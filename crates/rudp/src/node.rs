//! The per-node RUDP endpoint: reliable, in-order datagram delivery to each
//! peer over however many physical paths the bundled interfaces provide.
//!
//! The endpoint is a pure state machine: the caller (a test, the
//! [`crate::cluster::RudpCluster`] harness, or a real UDP event loop) feeds
//! it packets and clock ticks and carries out the transmissions it requests.
//! Path health is tracked with one [`PingMonitor`] and one [`LinkEndpoint`]
//! per path — the same consistent-history machinery of `rain-link` — so path
//! failures are detected, reported consistently, and masked as long as at
//! least one path to the peer remains.

use std::collections::{BTreeMap, HashMap, VecDeque};

use bytes::Bytes;

use rain_link::monitor::{PingConfig, PingMonitor};
use rain_link::protocol::{LinkEndpoint, LinkView};
use rain_sim::{IfaceId, NodeId, SimDuration, SimTime};

use crate::packet::Packet;

/// Tuning knobs of the RUDP endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RudpConfig {
    /// Maximum number of unacknowledged data packets per peer.
    pub window: usize,
    /// Retransmission timeout for unacknowledged data.
    pub retransmit_timeout: SimDuration,
    /// Ping probing configuration applied to every path.
    pub ping: PingConfig,
    /// If true, healthy paths are used round-robin (striping, extra
    /// bandwidth); if false, the first healthy path carries everything
    /// (pure fail-over).
    pub striping: bool,
}

impl Default for RudpConfig {
    fn default() -> Self {
        RudpConfig {
            window: 32,
            retransmit_timeout: SimDuration::from_millis(200),
            ping: PingConfig {
                interval: SimDuration::from_millis(50),
                timeout: SimDuration::from_millis(250),
            },
            striping: true,
        }
    }
}

/// A transmission requested by the endpoint: send `packet` to `to` using the
/// specific interface pair `via`.
#[derive(Debug, Clone, PartialEq)]
pub struct Transmit {
    /// Destination node.
    pub to: NodeId,
    /// (local interface, remote interface) to use.
    pub via: (IfaceId, IfaceId),
    /// The packet.
    pub packet: Packet,
}

/// An application-visible event produced by the endpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum RudpEvent {
    /// An in-order datagram from `from`.
    Delivered {
        /// Sending node.
        from: NodeId,
        /// Payload.
        payload: Bytes,
    },
    /// A path to `peer` changed observable state.
    PathState {
        /// The peer.
        peer: NodeId,
        /// Index of the path in the order it was registered.
        path: usize,
        /// New observable state (from the consistent-history machine).
        up: bool,
    },
}

#[derive(Debug)]
struct Path {
    local: IfaceId,
    remote: IfaceId,
    monitor: PingMonitor,
    link: LinkEndpoint,
    nonce: u64,
}

impl Path {
    fn observably_up(&self) -> bool {
        self.link.view() == LinkView::Up
    }
}

#[derive(Debug)]
struct Peer {
    id: NodeId,
    paths: Vec<Path>,
    rr_counter: usize,
    // Sender state.
    next_seq: u64,
    pending: VecDeque<(u64, Bytes)>,
    in_flight: BTreeMap<u64, (SimTime, Bytes)>,
    // Receiver state.
    expected: u64,
    out_of_order: BTreeMap<u64, Bytes>,
    // Statistics.
    delivered: u64,
    retransmissions: u64,
}

/// The RUDP endpoint living on one node.
#[derive(Debug)]
pub struct RudpNode {
    id: NodeId,
    config: RudpConfig,
    peers: HashMap<NodeId, Peer>,
}

impl RudpNode {
    /// Create an endpoint for `id`.
    pub fn new(id: NodeId, config: RudpConfig) -> Self {
        RudpNode {
            id,
            config,
            peers: HashMap::new(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Register a peer reachable over the given (local, remote) interface
    /// pairs — one pair per physical path. Paths are probed independently.
    pub fn add_peer(&mut self, peer: NodeId, paths: Vec<(IfaceId, IfaceId)>, now: SimTime) {
        assert!(!paths.is_empty(), "a peer needs at least one path");
        let paths = paths
            .into_iter()
            .map(|(local, remote)| Path {
                local,
                remote,
                monitor: PingMonitor::new(self.config.ping, now),
                link: LinkEndpoint::new(2),
                nonce: 0,
            })
            .collect();
        self.peers.insert(
            peer,
            Peer {
                id: peer,
                paths,
                rr_counter: 0,
                next_seq: 0,
                pending: VecDeque::new(),
                in_flight: BTreeMap::new(),
                expected: 0,
                out_of_order: BTreeMap::new(),
                delivered: 0,
                retransmissions: 0,
            },
        );
    }

    /// Queue a datagram for reliable delivery to `to`. Returns its sequence
    /// number.
    pub fn send(&mut self, to: NodeId, payload: Bytes) -> u64 {
        let peer = self.peers.get_mut(&to).expect("unknown peer");
        let seq = peer.next_seq;
        peer.next_seq += 1;
        peer.pending.push_back((seq, payload));
        seq
    }

    /// Number of datagrams queued or unacknowledged towards `to`.
    pub fn backlog(&self, to: NodeId) -> usize {
        self.peers
            .get(&to)
            .map(|p| p.pending.len() + p.in_flight.len())
            .unwrap_or(0)
    }

    /// Observable state of every path to `to` (in registration order).
    pub fn path_states(&self, to: NodeId) -> Vec<bool> {
        self.peers
            .get(&to)
            .map(|p| p.paths.iter().map(|path| path.observably_up()).collect())
            .unwrap_or_default()
    }

    /// True if at least one path to `to` is observably up.
    pub fn peer_reachable(&self, to: NodeId) -> bool {
        self.path_states(to).iter().any(|&up| up)
    }

    /// Total retransmissions performed towards `to`.
    pub fn retransmissions(&self, to: NodeId) -> u64 {
        self.peers.get(&to).map(|p| p.retransmissions).unwrap_or(0)
    }

    fn pick_paths(peer: &mut Peer, striping: bool) -> Vec<usize> {
        let up: Vec<usize> = (0..peer.paths.len())
            .filter(|&i| peer.paths[i].observably_up())
            .collect();
        if up.is_empty() {
            return Vec::new();
        }
        if striping {
            // Rotate the healthy set so successive packets use different paths.
            let start = peer.rr_counter % up.len();
            peer.rr_counter += 1;
            vec![up[start]]
        } else {
            vec![up[0]]
        }
    }

    /// Advance the endpoint's clock: emit pings, detect path time-outs,
    /// (re)transmit data within the window. Returns transmissions for the
    /// caller to carry out plus any path-state events.
    pub fn poll(&mut self, now: SimTime) -> (Vec<Transmit>, Vec<RudpEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();
        let config = self.config;
        for peer in self.peers.values_mut() {
            // Path probing and failure detection.
            for (idx, path) in peer.paths.iter_mut().enumerate() {
                if path.monitor.should_ping(now) {
                    path.nonce += 1;
                    out.push(Transmit {
                        to: peer.id,
                        via: (path.local, path.remote),
                        packet: Packet::Ping { nonce: path.nonce },
                    });
                }
                if let Some(ev) = path.monitor.on_tick(now) {
                    let before = path.observably_up();
                    path.link.step(ev);
                    if path.observably_up() != before {
                        events.push(RudpEvent::PathState {
                            peer: peer.id,
                            path: idx,
                            up: path.observably_up(),
                        });
                    }
                }
            }

            // Retransmit anything that has waited too long.
            let mut retransmit: Vec<(u64, Bytes)> = Vec::new();
            for (&seq, (sent_at, payload)) in peer.in_flight.iter() {
                if now.since(*sent_at) >= config.retransmit_timeout {
                    retransmit.push((seq, payload.clone()));
                }
            }
            for (seq, payload) in retransmit {
                if let Some(path_idx) = Self::pick_paths(peer, config.striping).first().copied() {
                    let path = &peer.paths[path_idx];
                    out.push(Transmit {
                        to: peer.id,
                        via: (path.local, path.remote),
                        packet: Packet::Data {
                            seq,
                            payload: payload.clone(),
                        },
                    });
                    peer.retransmissions += 1;
                    peer.in_flight.insert(seq, (now, payload));
                }
            }

            // Transmit new data while the window has room.
            while peer.in_flight.len() < config.window {
                let Some((seq, payload)) = peer.pending.pop_front() else {
                    break;
                };
                let Some(path_idx) = Self::pick_paths(peer, config.striping).first().copied()
                else {
                    // No healthy path: put it back and stop trying.
                    peer.pending.push_front((seq, payload));
                    break;
                };
                let path = &peer.paths[path_idx];
                out.push(Transmit {
                    to: peer.id,
                    via: (path.local, path.remote),
                    packet: Packet::Data {
                        seq,
                        payload: payload.clone(),
                    },
                });
                peer.in_flight.insert(seq, (now, payload));
            }
        }
        (out, events)
    }

    /// Feed a packet received from `from` over the path whose *local* end is
    /// `local_iface`. Returns transmissions (acks, pongs) and events
    /// (deliveries, path-state changes).
    pub fn on_packet(
        &mut self,
        now: SimTime,
        from: NodeId,
        local_iface: IfaceId,
        remote_iface: IfaceId,
        packet: Packet,
    ) -> (Vec<Transmit>, Vec<RudpEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();
        let Some(peer) = self.peers.get_mut(&from) else {
            return (out, events);
        };

        // Any packet on a path proves the path works right now.
        if let Some((idx, path)) = peer
            .paths
            .iter_mut()
            .enumerate()
            .find(|(_, p)| p.local == local_iface && p.remote == remote_iface)
        {
            let before = path.observably_up();
            if let Some(ev) = path.monitor.on_heard(now) {
                path.link.step(ev);
            }
            if path.observably_up() != before {
                events.push(RudpEvent::PathState {
                    peer: from,
                    path: idx,
                    up: path.observably_up(),
                });
            }
        }

        match packet {
            Packet::Ping { nonce } => {
                out.push(Transmit {
                    to: from,
                    via: (local_iface, remote_iface),
                    packet: Packet::Pong { nonce },
                });
            }
            Packet::Pong { .. } => {}
            Packet::Ack { ack } => {
                peer.in_flight.retain(|&seq, _| seq >= ack);
            }
            Packet::Data { seq, payload } => {
                if seq >= peer.expected {
                    peer.out_of_order.entry(seq).or_insert(payload);
                }
                // Deliver any now-contiguous prefix in order.
                while let Some(payload) = peer.out_of_order.remove(&peer.expected) {
                    events.push(RudpEvent::Delivered { from, payload });
                    peer.expected += 1;
                    peer.delivered += 1;
                }
                out.push(Transmit {
                    to: from,
                    via: (local_iface, remote_iface),
                    packet: Packet::Ack { ack: peer.expected },
                });
            }
        }
        (out, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iface(node: usize, iface: usize) -> IfaceId {
        IfaceId {
            node: NodeId(node),
            iface,
        }
    }

    fn two_path_pair() -> (RudpNode, RudpNode) {
        let mut a = RudpNode::new(NodeId(0), RudpConfig::default());
        let mut b = RudpNode::new(NodeId(1), RudpConfig::default());
        a.add_peer(
            NodeId(1),
            vec![(iface(0, 0), iface(1, 0)), (iface(0, 1), iface(1, 1))],
            SimTime::ZERO,
        );
        b.add_peer(
            NodeId(0),
            vec![(iface(1, 0), iface(0, 0)), (iface(1, 1), iface(0, 1))],
            SimTime::ZERO,
        );
        (a, b)
    }

    /// Directly shuttle packets between two endpoints with no loss.
    fn exchange(a: &mut RudpNode, b: &mut RudpNode, now: SimTime) -> Vec<RudpEvent> {
        let mut events = Vec::new();
        let (mut from_a, ev_a) = a.poll(now);
        let (mut from_b, ev_b) = b.poll(now);
        events.extend(ev_a);
        events.extend(ev_b);
        // Two rounds are enough to move data + ack in a lossless direct test.
        for _ in 0..3 {
            let mut next_a = Vec::new();
            let mut next_b = Vec::new();
            for t in from_a.drain(..) {
                let (replies, evs) = b.on_packet(now, NodeId(0), t.via.1, t.via.0, t.packet);
                next_b.extend(replies);
                events.extend(evs);
            }
            for t in from_b.drain(..) {
                let (replies, evs) = a.on_packet(now, NodeId(1), t.via.1, t.via.0, t.packet);
                next_a.extend(replies);
                events.extend(evs);
            }
            from_a = next_a;
            from_b = next_b;
        }
        events
    }

    #[test]
    fn datagrams_arrive_in_order() {
        let (mut a, mut b) = two_path_pair();
        for i in 0..10u8 {
            a.send(NodeId(1), Bytes::from(vec![i]));
        }
        let events = exchange(&mut a, &mut b, SimTime::from_millis(1));
        let delivered: Vec<u8> = events
            .iter()
            .filter_map(|e| match e {
                RudpEvent::Delivered { payload, .. } => Some(payload[0]),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, (0..10).collect::<Vec<u8>>());
        assert_eq!(a.backlog(NodeId(1)), 0, "everything acknowledged");
    }

    #[test]
    fn striping_spreads_packets_across_both_paths() {
        let (mut a, _b) = two_path_pair();
        for i in 0..8u8 {
            a.send(NodeId(1), Bytes::from(vec![i]));
        }
        let (transmits, _) = a.poll(SimTime::from_millis(1));
        let data_paths: Vec<usize> = transmits
            .iter()
            .filter(|t| matches!(t.packet, Packet::Data { .. }))
            .map(|t| t.via.0.iface)
            .collect();
        assert!(data_paths.contains(&0) && data_paths.contains(&1));
    }

    #[test]
    fn failover_mode_sticks_to_the_first_healthy_path() {
        let mut a = RudpNode::new(
            NodeId(0),
            RudpConfig {
                striping: false,
                ..RudpConfig::default()
            },
        );
        a.add_peer(
            NodeId(1),
            vec![(iface(0, 0), iface(1, 0)), (iface(0, 1), iface(1, 1))],
            SimTime::ZERO,
        );
        for i in 0..4u8 {
            a.send(NodeId(1), Bytes::from(vec![i]));
        }
        let (transmits, _) = a.poll(SimTime::from_millis(1));
        for t in transmits
            .iter()
            .filter(|t| matches!(t.packet, Packet::Data { .. }))
        {
            assert_eq!(t.via.0.iface, 0);
        }
    }

    #[test]
    fn unacked_data_is_retransmitted() {
        let (mut a, _b) = two_path_pair();
        a.send(NodeId(1), Bytes::from_static(b"x"));
        let (first, _) = a.poll(SimTime::from_millis(1));
        assert!(first
            .iter()
            .any(|t| matches!(t.packet, Packet::Data { .. })));
        // No ack arrives; after the retransmission timeout (but before the
        // path itself is declared down) the data goes out again.
        let (second, _) = a.poll(SimTime::from_millis(210));
        assert!(second
            .iter()
            .any(|t| matches!(t.packet, Packet::Data { .. })));
        assert_eq!(a.retransmissions(NodeId(1)), 1);
    }

    #[test]
    fn silent_paths_are_marked_down_and_traffic_stops() {
        let (mut a, _b) = two_path_pair();
        // Let the monitors time out without ever hearing the peer.
        let mut down_events = 0;
        for ms in (0..2_000).step_by(50) {
            let (_, events) = a.poll(SimTime::from_millis(ms));
            down_events += events
                .iter()
                .filter(|e| matches!(e, RudpEvent::PathState { up: false, .. }))
                .count();
        }
        assert_eq!(down_events, 2, "both paths reported down exactly once");
        assert!(!a.peer_reachable(NodeId(1)));
        // With no healthy path, new data stays queued.
        a.send(NodeId(1), Bytes::from_static(b"stuck"));
        let (transmits, _) = a.poll(SimTime::from_millis(2_050));
        assert!(transmits
            .iter()
            .all(|t| !matches!(t.packet, Packet::Data { .. })));
        assert_eq!(a.backlog(NodeId(1)), 1);
    }

    #[test]
    fn duplicate_data_is_delivered_once() {
        let (_a, mut b) = two_path_pair();
        let payload = Bytes::from_static(b"dup");
        let (_, ev1) = b.on_packet(
            SimTime::from_millis(1),
            NodeId(0),
            iface(1, 0),
            iface(0, 0),
            Packet::Data {
                seq: 0,
                payload: payload.clone(),
            },
        );
        let (_, ev2) = b.on_packet(
            SimTime::from_millis(2),
            NodeId(0),
            iface(1, 0),
            iface(0, 0),
            Packet::Data { seq: 0, payload },
        );
        let deliveries = |evs: &[RudpEvent]| {
            evs.iter()
                .filter(|e| matches!(e, RudpEvent::Delivered { .. }))
                .count()
        };
        assert_eq!(deliveries(&ev1), 1);
        assert_eq!(deliveries(&ev2), 0);
    }
}
