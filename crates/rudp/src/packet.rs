//! Wire format of RUDP, the paper's "Reliable UDP" datagram layer.
//!
//! RUDP runs over unreliable packet delivery (the kernel's UDP sockets on the
//! real testbed, [`rain_sim`]'s fabric here) and adds per-peer sequencing,
//! cumulative acknowledgements, retransmission, and per-path ping probing so
//! that bundled interfaces can be monitored and used independently.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A single RUDP packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Packet {
    /// Application data, sequenced per peer (not per path).
    Data {
        /// Sequence number of this datagram.
        seq: u64,
        /// Application payload.
        #[serde(with = "serde_bytes_compat")]
        payload: Bytes,
    },
    /// Cumulative acknowledgement: every sequence number `< ack` was received.
    Ack {
        /// The next sequence number the receiver expects.
        ack: u64,
    },
    /// Path probe.
    Ping {
        /// Echo nonce.
        nonce: u64,
    },
    /// Path probe reply.
    Pong {
        /// Echoed nonce.
        nonce: u64,
    },
}

impl Packet {
    /// Approximate on-the-wire size in bytes (for throughput accounting:
    /// payload plus a small fixed header).
    pub fn wire_size(&self) -> u64 {
        const HEADER: u64 = 16;
        match self {
            Packet::Data { payload, .. } => HEADER + payload.len() as u64,
            _ => HEADER,
        }
    }

    /// True for probe traffic (pings/pongs), false for data and acks.
    pub fn is_probe(&self) -> bool {
        matches!(self, Packet::Ping { .. } | Packet::Pong { .. })
    }
}

/// `bytes::Bytes` does not implement serde by default in every configuration;
/// serialize it as a plain byte vector.
///
/// The vendored offline serde stub expands derives to nothing, so these
/// adapters are only referenced once a real serde backend is swapped in;
/// keep them compiling (and warning-free) until then.
#[allow(dead_code)]
mod serde_bytes_compat {
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(b: &Bytes, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bytes(b)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Bytes, D::Error> {
        let v = Vec::<u8>::deserialize(d)?;
        Ok(Bytes::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_counts_payload() {
        let p = Packet::Data {
            seq: 3,
            payload: Bytes::from(vec![0u8; 100]),
        };
        assert_eq!(p.wire_size(), 116);
        assert_eq!(Packet::Ack { ack: 1 }.wire_size(), 16);
        assert!(Packet::Ping { nonce: 1 }.is_probe());
        assert!(!Packet::Ack { ack: 1 }.is_probe());
    }
}
