//! Epoch-numbered membership views.
//!
//! A [`MembershipView`] is an immutable snapshot of the cluster: which
//! shards are in, stamped with a monotonically increasing **epoch**. Views
//! follow the joint-consensus shape of the membership design in the
//! related-work notes: between two committed views the cluster runs in a
//! transition where both the old and the proposed member set matter (old
//! owners keep serving, new owners warm up), and the epoch only advances
//! when the elected leader commits the cutover. Requests are stamped with
//! the epoch their client believes in; a mismatch is detected at the
//! routing layer, not discovered as silent misplacement.

use crate::ring::{HashRing, ShardId};

/// One committed membership view: the epoch, the member set, and the
/// consistent-hash ring derived from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipView {
    epoch: u64,
    ring: HashRing,
}

impl MembershipView {
    /// The genesis view: epoch 1 over the initial member set.
    pub fn genesis(members: &[ShardId], vnodes: usize) -> Self {
        MembershipView {
            epoch: 1,
            ring: HashRing::new(members, vnodes),
        }
    }

    /// This view's epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The member shards, sorted.
    pub fn members(&self) -> &[ShardId] {
        self.ring.shards()
    }

    /// True if `shard` is a member of this view.
    pub fn contains(&self, shard: ShardId) -> bool {
        self.ring.shards().contains(&shard)
    }

    /// The ring this view routes by.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The shard owning `key` under this view (`None` on an empty view).
    pub fn owner_of(&self, key: &str) -> Option<ShardId> {
        self.ring.lookup(key)
    }

    /// Rebuild a committed view from its logged parts (epoch, member set,
    /// vnode count). The ring construction is deterministic, so a view
    /// restored from a metalog record routes exactly as the view that was
    /// logged.
    pub fn restore(epoch: u64, members: &[ShardId], vnodes: usize) -> Self {
        MembershipView {
            epoch,
            ring: HashRing::new(members, vnodes),
        }
    }

    /// The committed successor of this view: the next epoch over a new
    /// member set (same vnode count).
    pub fn successor(&self, members: &[ShardId]) -> MembershipView {
        MembershipView {
            epoch: self.epoch + 1,
            ring: HashRing::new(members, self.ring.vnodes()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_advance_one_commit_at_a_time() {
        let v1 = MembershipView::genesis(&[0, 1, 2], 32);
        assert_eq!(v1.epoch(), 1);
        assert_eq!(v1.members(), &[0, 1, 2]);
        let v2 = v1.successor(&[0, 1, 2, 3]);
        assert_eq!(v2.epoch(), 2);
        assert!(v2.contains(3) && !v1.contains(3));
        let v3 = v2.successor(&[1, 2, 3]);
        assert_eq!(v3.epoch(), 3);
        assert!(!v3.contains(0));
    }

    #[test]
    fn views_with_the_same_members_route_identically() {
        let a = MembershipView::genesis(&[0, 1, 2], 32);
        let b = a.successor(&[0, 1, 2]);
        for i in 0..100 {
            let key = format!("k{i}");
            assert_eq!(a.owner_of(&key), b.owner_of(&key));
        }
    }
}
