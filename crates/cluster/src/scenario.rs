//! Deterministic membership-churn scenarios over the full sharded stack.
//!
//! A churn scenario drives both planes at once: the [`ControlPlane`] runs
//! the token-ring membership and leader election on simulated time, and
//! every transition its leader commits is executed by the
//! [`ClusterStore`] as a two-phase handover. Workload keys follow a
//! zipfian popularity curve over a mixed small/large size distribution
//! ([`ZipfSampler`] / [`SizeMix`]), so the hot keys keep getting
//! overwritten *while* the groups that pack them are mid-migration.
//!
//! The scripted run is the acceptance story for the cluster layer:
//!
//! 1. seed the namespace over three shards,
//! 2. a fourth shard **joins** → the leader commits epoch 2 → groups
//!    rebalance at one symbol per node each,
//! 3. the **leader is killed** → re-election → the survivors commit
//!    epoch 3 (the dead shard's units stay put, honestly unavailable,
//!    until the shard's data plane returns),
//! 4. a fifth shard joins and **crashes mid-handover** → the transition
//!    aborts, destination copies are evicted, nothing acked is lost.
//!
//! After every phase the scenario sweeps *every acked object* and demands
//! bit-exact bytes or an honest unavailability error — never wrong bytes,
//! never a silent miss. One seed fixes the whole history, so a run replays
//! bit-identically (asserted by the crate's tests and diffed in CI).

use std::collections::BTreeMap;

use rain_codes::CodeSpec;
use rain_election::ElectionConfig;
use rain_membership::MemberConfig;
use rain_obs::Registry;
use rain_sim::{DetRng, SimDuration};
use rain_storage::{GroupConfig, SelectionPolicy, SizeMix, StorageError, ZipfSampler};

use crate::control::ControlPlane;
use crate::ring::ShardId;
use crate::store::{ClusterError, ClusterStore};

/// Parameters of a churn scenario run.
#[derive(Debug, Clone)]
pub struct ChurnSpec {
    /// Scenario name, carried into the report.
    pub name: &'static str,
    /// Master seed: fixes workload, token passes, and elections.
    pub seed: u64,
    /// Distinct objects in the namespace.
    pub objects: usize,
    /// Virtual nodes per shard on the routing ring.
    pub vnodes: usize,
    /// Zipf exponent of the key-popularity curve (higher = more skew).
    pub zipf_exponent: f64,
    /// Small/large object size mix.
    pub mix: SizeMix,
}

impl ChurnSpec {
    /// The default acceptance scenario: 40 objects, skewed popularity,
    /// a 4:1 small/large mix that exercises grouped and whole placement.
    pub fn default_churn() -> Self {
        ChurnSpec {
            name: "join_leaderkill_abort",
            seed: 0xC1_D2_E3,
            objects: 40,
            vnodes: 48,
            zipf_exponent: 1.1,
            mix: SizeMix {
                small_len: 600,
                large_len: 9_000,
                large_fraction: 0.2,
            },
        }
    }
}

/// What one scripted churn run observed, in full. Two runs from the same
/// [`ChurnSpec`] produce equal reports (asserted in tests, diffed in CI).
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnReport {
    /// Scenario name.
    pub name: String,
    /// The committed epoch when the run ended.
    pub final_epoch: u64,
    /// Writes acknowledged.
    pub writes_ok: u64,
    /// Writes refused because the owning shard was down.
    pub writes_unavailable: u64,
    /// Writes rejected for a stale epoch stamp (then retried fresh).
    pub stale_writes_rejected: u64,
    /// Reads served despite a stale epoch stamp.
    pub forwarded_reads: u64,
    /// Writes applied to both old and new owner during handovers.
    pub dual_writes: u64,
    /// Sweep retrieves attempted.
    pub retrieves: u64,
    /// Sweep retrieves returning exactly the acked bytes.
    pub bit_exact: u64,
    /// Sweep retrieves answered with an honest unavailability error.
    pub unavailable: u64,
    /// Sweep retrieves returning bytes that differ from the acked bytes.
    /// Must be zero — anything else is data corruption.
    pub wrong_bytes: u64,
    /// Acked objects the cluster no longer knows. Must be zero.
    pub missing: u64,
    /// Sealed coding groups rebalanced.
    pub groups_moved: u64,
    /// Whole objects rebalanced.
    pub wholes_moved: u64,
    /// Total symbols installed by rebalancing.
    pub symbols_transferred: u64,
    /// Symbols per moved unit — the headline: a group of many packed
    /// objects migrates for exactly one symbol per storage node.
    pub symbols_per_group: f64,
    /// Planned moves skipped because a shard was down.
    pub transfer_skips: u64,
    /// Handovers aborted (the mid-handover crash phase).
    pub handover_aborts: u64,
    /// Leadership changes across the run.
    pub leader_changes: u64,
    /// Token regenerations (911 calls) across the run.
    pub regenerations: u64,
    /// Tokens received, summed over all control nodes.
    pub tokens_received: u64,
}

/// The acked state of the namespace, as the client believes it.
type Model = BTreeMap<String, Vec<u8>>;

struct Driver {
    cluster: ClusterStore,
    control: ControlPlane,
    model: Model,
    rng: DetRng,
    zipf: ZipfSampler,
    mix: SizeMix,
    version: u64,
    writes_ok: u64,
    writes_unavailable: u64,
    retrieves: u64,
    bit_exact: u64,
    unavailable: u64,
    wrong_bytes: u64,
    missing: u64,
}

fn object_name(i: usize) -> String {
    format!("obj-{i:03}")
}

fn payload(obj: usize, version: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| ((obj as u64 * 131 + version * 17 + j as u64) % 251) as u8)
        .collect()
}

impl Driver {
    /// One tick of simulated time on both planes.
    fn tick(&mut self) {
        let step = SimDuration::from_millis(100);
        self.control.tick(step);
        self.cluster.advance_time(step);
    }

    fn settle(&mut self, secs: u64) {
        for _ in 0..secs * 10 {
            self.tick();
        }
    }

    /// Tick until the control plane surfaces a transition satisfying
    /// `want`, up to `max_secs` of simulated time.
    fn await_transition(
        &mut self,
        max_secs: u64,
        want: impl Fn(&[ShardId]) -> bool,
    ) -> Vec<ShardId> {
        for _ in 0..max_secs * 10 {
            self.tick();
            if let Some(members) = self.control.poll_transition() {
                if want(&members) {
                    return members;
                }
            }
        }
        panic!("control plane never surfaced the expected transition");
    }

    /// Overwrite one zipf-sampled key with fresh bytes at the current
    /// epoch. A `ShardDown` refusal leaves the model untouched — the old
    /// bytes stay acked.
    fn zipf_overwrite(&mut self) {
        let obj = self.zipf.sample(&mut self.rng);
        let key = object_name(obj);
        let len = self.mix.sample(&mut self.rng);
        self.version += 1;
        let data = payload(obj, self.version, len);
        let epoch = self.cluster.epoch();
        match self.cluster.store(&key, &data, epoch) {
            Ok(()) => {
                self.model.insert(key, data);
                self.writes_ok += 1;
            }
            Err(ClusterError::ShardDown(_)) => self.writes_unavailable += 1,
            Err(e) => panic!("unexpected write failure for {key}: {e}"),
        }
    }

    /// Read back every acked object and classify the answer: bit-exact,
    /// honestly unavailable, wrong bytes, or missing. Every fifth read is
    /// stamped with the previous epoch to exercise directory forwarding.
    fn sweep(&mut self) {
        let epoch = self.cluster.epoch();
        let keys: Vec<String> = self.model.keys().cloned().collect();
        for (i, key) in keys.iter().enumerate() {
            let stamp = if i % 5 == 4 && epoch > 1 {
                epoch - 1
            } else {
                epoch
            };
            self.retrieves += 1;
            match self.cluster.retrieve(key, SelectionPolicy::FirstK, stamp) {
                Ok(read) => {
                    if read.bytes == self.model[key] {
                        self.bit_exact += 1;
                    } else {
                        self.wrong_bytes += 1;
                    }
                }
                Err(ClusterError::ShardDown(_))
                | Err(ClusterError::Storage(StorageError::NotEnoughNodes { .. })) => {
                    self.unavailable += 1;
                }
                Err(ClusterError::Storage(StorageError::UnknownObject { .. })) => {
                    self.missing += 1;
                }
                Err(e) => panic!("unexpected read failure for {key}: {e}"),
            }
        }
    }

    /// Drain the in-flight handover, interleaving one hot-key overwrite
    /// after every transferred unit so dual-write paths stay exercised.
    fn drain_transfers(&mut self) {
        while self
            .cluster
            .transfer_next()
            .expect("transfer must not error")
            .is_some()
        {
            self.zipf_overwrite();
            self.tick();
        }
    }
}

/// Run the scripted churn scenario, publishing telemetry into `registry`.
pub fn run_churn_scenario_observed(spec: &ChurnSpec, registry: &Registry) -> ChurnReport {
    let mut cluster = ClusterStore::new(
        CodeSpec::bcode_6_4(),
        GroupConfig::small_objects(),
        &[0, 1, 2],
        spec.vnodes,
    )
    .expect("bcode_6_4 builds");
    cluster.attach_registry(registry);
    let control = ControlPlane::new(
        5,
        3,
        MemberConfig::default(),
        ElectionConfig::default(),
        spec.seed,
    );
    let rng = DetRng::new(spec.seed).fork(0xC0DE);
    let zipf = ZipfSampler::new(spec.objects, spec.zipf_exponent);
    let mut d = Driver {
        cluster,
        control,
        model: Model::new(),
        rng,
        zipf,
        mix: spec.mix,
        version: 0,
        writes_ok: 0,
        writes_unavailable: 0,
        retrieves: 0,
        bit_exact: 0,
        unavailable: 0,
        wrong_bytes: 0,
        missing: 0,
    };

    // Let the initial token ring and election settle, then seed every
    // object once and seal the open groups.
    d.settle(3);
    for i in 0..spec.objects {
        let len = d.mix.sample(&mut d.rng);
        let data = payload(i, 0, len);
        let epoch = d.cluster.epoch();
        d.cluster
            .store(&object_name(i), &data, epoch)
            .expect("seeding on a healthy cluster");
        d.model.insert(object_name(i), data);
        d.writes_ok += 1;
    }
    d.cluster.flush_all();
    d.sweep();

    // Phase 1: shard 3 joins. The leader watches the token ring converge
    // on the wider view, then the data plane rebalances group-by-group
    // and commits epoch 2.
    d.control.join(3, 0);
    let members = d.await_transition(20, |m| m.contains(&3));
    d.cluster
        .begin_handover(&members)
        .expect("no handover in flight");
    d.drain_transfers();
    // A client still on the genesis epoch: its write bounces with the
    // current epoch, the retry with a fresh stamp lands.
    let stale = d.cluster.store("obj-000", b"stale attempt", 0);
    assert!(matches!(stale, Err(ClusterError::StaleEpoch { .. })));
    d.cluster.commit_handover().expect("commit epoch 2");
    d.control.mark_committed(&members);
    d.zipf_overwrite();
    d.sweep();

    // Phase 2: the leader (shard 0) dies — control node and data plane
    // together. The survivors re-elect, exclude it, and commit epoch 3.
    // Units stranded on shard 0 are skipped and stay honestly
    // unavailable until its data plane returns.
    d.control.crash(0);
    d.cluster.fail_shard(0);
    let members = d.await_transition(40, |m| !m.contains(&0));
    d.cluster
        .begin_handover(&members)
        .expect("no handover in flight");
    d.drain_transfers();
    d.cluster.commit_handover().expect("commit epoch 3");
    d.control.mark_committed(&members);
    d.sweep();

    // Shard 0's storage nodes come back (its controller stays dead, so
    // the view does not change): the stranded units read bit-exact again.
    d.cluster.recover_shard(0);
    d.sweep();

    // Phase 3: shard 4 joins but crashes mid-handover. The transition
    // aborts, destination copies are evicted, and the committed view
    // keeps serving everything acked.
    d.control.join(4, 1);
    let members = d.await_transition(20, |m| m.contains(&4));
    let planned = d
        .cluster
        .begin_handover(&members)
        .expect("no handover in flight");
    for _ in 0..planned / 2 {
        d.cluster.transfer_next().expect("transfer must not error");
        d.zipf_overwrite();
        d.tick();
    }
    d.control.crash(4);
    d.cluster.fail_shard(4);
    d.cluster
        .abort_handover()
        .expect("abort in flight handover");
    d.sweep();

    d.cluster.publish_gauges();
    d.control.publish_gauges(registry);

    let stats = d.cluster.stats();
    let units_moved = stats.groups_moved + stats.wholes_moved;
    ChurnReport {
        name: spec.name.to_string(),
        final_epoch: d.cluster.epoch(),
        writes_ok: d.writes_ok,
        writes_unavailable: d.writes_unavailable,
        stale_writes_rejected: stats.stale_writes_rejected,
        forwarded_reads: stats.forwarded_reads,
        dual_writes: stats.dual_writes,
        retrieves: d.retrieves,
        bit_exact: d.bit_exact,
        unavailable: d.unavailable,
        wrong_bytes: d.wrong_bytes,
        missing: d.missing,
        groups_moved: stats.groups_moved,
        wholes_moved: stats.wholes_moved,
        symbols_transferred: stats.symbols_transferred,
        symbols_per_group: if units_moved > 0 {
            stats.symbols_transferred as f64 / units_moved as f64
        } else {
            0.0
        },
        transfer_skips: stats.transfer_skips,
        handover_aborts: stats.handover_aborts,
        leader_changes: d.control.leader_changes(),
        regenerations: d.control.regenerations(),
        tokens_received: d.control.tokens_received(),
    }
}

/// Run the scripted churn scenario with a private telemetry registry.
pub fn run_churn_scenario(spec: &ChurnSpec) -> ChurnReport {
    run_churn_scenario_observed(spec, &Registry::new())
}

/// The churn scenarios the bench harness replays: every run is virtual-time
/// deterministic, so `BENCH_cluster.json` embeds their reports verbatim and
/// CI diffs them exactly.
pub fn builtin_churn_specs() -> Vec<ChurnSpec> {
    vec![
        ChurnSpec::default_churn(),
        ChurnSpec {
            name: "hot_keys_heavy_mix",
            seed: 0xFEED_5EED,
            objects: 64,
            vnodes: 64,
            zipf_exponent: 1.4,
            mix: SizeMix {
                small_len: 900,
                large_len: 12_000,
                large_fraction: 0.3,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_default_churn_scenario_is_clean_and_replays_bit_identically() {
        let spec = ChurnSpec::default_churn();
        let a = run_churn_scenario(&spec);
        let b = run_churn_scenario(&spec);
        assert_eq!(a, b, "same seed must replay bit-identically");

        assert_eq!(a.wrong_bytes, 0, "never wrong bytes");
        assert_eq!(a.missing, 0, "never a silently lost object");
        assert_eq!(a.final_epoch, 3, "join commit + post-leader-kill commit");
        assert_eq!(a.handover_aborts, 1, "the mid-handover crash aborts once");
        assert!(a.groups_moved >= 1, "rebalancing must move sealed groups");
        assert!(a.stale_writes_rejected >= 1);
        assert!(a.forwarded_reads >= 1, "stale-stamped sweeps must forward");
        assert!(
            a.unavailable >= 1,
            "the dead leader's units go dark honestly"
        );
        assert!(a.leader_changes >= 2, "initial election plus re-election");
        assert!(a.tokens_received > 0, "the membership token must circulate");
        assert!(
            a.bit_exact + a.unavailable == a.retrieves,
            "every sweep read is bit-exact or honestly unavailable"
        );
        // The headline economics: a moved unit costs one symbol per node.
        assert!(a.symbols_per_group > 0.0);
        assert_eq!(
            a.symbols_transferred,
            (a.groups_moved + a.wholes_moved) * a.symbols_per_group as u64
        );
    }

    #[test]
    fn every_builtin_churn_spec_runs_clean() {
        for spec in builtin_churn_specs() {
            let r = run_churn_scenario(&spec);
            assert_eq!(r.wrong_bytes, 0, "{}: wrong bytes", spec.name);
            assert_eq!(r.missing, 0, "{}: lost objects", spec.name);
            assert_eq!(
                r.bit_exact + r.unavailable,
                r.retrieves,
                "{}: unaccounted reads",
                spec.name
            );
            assert!(r.groups_moved >= 1, "{}: no group moved", spec.name);
        }
    }
}
