//! The sharded store front-end: ring-routed requests, epoch stamping, and
//! two-phase group-granularity handover.
//!
//! A [`ClusterStore`] splits the object namespace across many
//! [`DistributedStore`] coordinators (**shards**). Placement is decided by
//! the committed view's consistent-hash ring; the authoritative location of
//! every object is tracked in a directory so that *sealed coding groups* —
//! not individual objects — can be the unit of rebalancing, exactly as they
//! are the unit of repair: moving a group costs one symbol per node no
//! matter how many small objects ride inside it.
//!
//! ## Epochs
//!
//! Every request carries the epoch its client believes in. A write stamped
//! with any other epoch is **rejected** with the current epoch (the client
//! must refresh its view — acking a write routed by a dead ring could place
//! it on a shard that just ceded the key). A read stamped with an old epoch
//! is **forwarded**: the directory knows where the bytes live now, the
//! read is served, and the forward is counted so an operator can see
//! clients lagging behind a view change.
//!
//! ## Handover (joint consensus, two phases)
//!
//! A view change from `V` to `V'` runs as:
//!
//! 1. **Prepare** ([`ClusterStore::begin_handover`] +
//!    [`ClusterStore::transfer_next`]): open groups are flushed so every
//!    moving unit is sealed; each unit whose placement key maps to a
//!    different shard under `V'` is exported from its old owner and
//!    imported by its new one (both logged in the respective shards' WALs).
//!    The old owner stays authoritative: reads hit it first and fall back
//!    to the new copy only when the old one cannot serve (**dual-serve**);
//!    writes land on the old owner *and* on the key's `V'` owner
//!    (**dual-logged**), so whichever view survives has the bytes.
//! 2. **Cutover** ([`ClusterStore::commit_handover`]): remaining transfers
//!    finish, old copies of moved units are evicted, the directory repoints,
//!    dual-written keys collapse onto their `V'` owner, and the epoch
//!    advances. [`ClusterStore::abort_handover`] is the mirror image — new
//!    copies are evicted and `V` stays authoritative — used when the
//!    transition is overtaken (e.g. the joining shard crashed mid-handover).
//!
//! A unit whose source shard is down at transfer time is skipped, stays
//! owned by its (possibly dead) shard, and reads of it report honest
//! unavailability until the shard returns — never wrong bytes.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use rain_codes::{build_code, CodeSpec};
use rain_obs::{span, Recorder, Registry, VirtualClock};
use rain_sim::{NodeId, SimDuration};
use rain_storage::wal::file::FileLog;
use rain_storage::wal::{MemLog, WalError, WriteAheadLog};
use rain_storage::{
    DistributedStore, GroupConfig, GroupId, RecoveryReport, RetrieveReport, SelectionPolicy,
    StorageError, SurvivingNodes,
};

use crate::metalog::{MetaLog, MetaRecord, MetaUnit};
use crate::ring::ShardId;
use crate::view::MembershipView;

fn wal_err(e: WalError) -> ClusterError {
    ClusterError::Storage(StorageError::Wal(e))
}

/// Errors surfaced by the cluster routing layer.
#[derive(Debug)]
pub enum ClusterError {
    /// The request was stamped with an epoch other than the committed one.
    /// Writes get this; reads are forwarded instead.
    StaleEpoch {
        /// The epoch the client stamped.
        stamped: u64,
        /// The epoch the cluster is at.
        current: u64,
    },
    /// The shard that must serve this request is down.
    ShardDown(ShardId),
    /// The view has no members, so no shard owns the key.
    NoOwner,
    /// A handover is already in progress.
    HandoverInProgress,
    /// No handover is in progress.
    NoHandover,
    /// The owning shard failed the operation.
    Storage(StorageError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::StaleEpoch { stamped, current } => {
                write!(f, "stale epoch {stamped}, cluster is at {current}")
            }
            ClusterError::ShardDown(s) => write!(f, "shard {s} is down"),
            ClusterError::NoOwner => write!(f, "the view has no members"),
            ClusterError::HandoverInProgress => write!(f, "a handover is already in progress"),
            ClusterError::NoHandover => write!(f, "no handover is in progress"),
            ClusterError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<StorageError> for ClusterError {
    fn from(e: StorageError) -> Self {
        ClusterError::Storage(e)
    }
}

/// A successful routed read.
#[derive(Debug)]
pub struct ClusterRead {
    /// The object's bytes.
    pub bytes: Vec<u8>,
    /// The shard that served them.
    pub shard: ShardId,
    /// The shard-level retrieve report.
    pub report: RetrieveReport,
    /// True when the primary owner could not serve and the bytes came from
    /// the handover secondary (dual-serve).
    pub fallback: bool,
}

/// Running totals of cluster-level events, published as gauges by
/// [`ClusterStore::publish_gauges`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// View changes committed (epoch bumps past genesis).
    pub epoch_commits: u64,
    /// Handovers abandoned by [`ClusterStore::abort_handover`].
    pub handover_aborts: u64,
    /// Sealed coding groups rebalanced to a new owner.
    pub groups_moved: u64,
    /// Whole objects rebalanced to a new owner.
    pub wholes_moved: u64,
    /// Symbols installed by transfers — the true rebalance cost, counted
    /// per node per *unit* (group or whole), never per object.
    pub symbols_transferred: u64,
    /// Planned unit moves skipped because a shard was down or the unit
    /// could not be read/installed; the unit stayed with its old owner.
    pub transfer_skips: u64,
    /// Writes rejected for carrying a stale epoch.
    pub stale_writes_rejected: u64,
    /// Reads served despite a stale epoch stamp (directory forwarding) —
    /// the "clients lagging behind a view change" operator signal.
    pub forwarded_reads: u64,
    /// Reads stamped with an epoch *ahead* of the committed one — a buggy
    /// or future-view client, counted apart from [`Self::forwarded_reads`]
    /// so lag stays a clean signal.
    pub future_stamped_reads: u64,
    /// Writes applied to both the old and new owner during a handover.
    pub dual_writes: u64,
    /// Units re-homed by a replan of previously skipped transfers
    /// ([`ClusterStore::replan_skipped`]).
    pub handover_replanned: u64,
}

/// What survives a full-cluster power loss: each shard's node fabric (the
/// machines holding installed symbols). Produced by [`ClusterStore::crash`],
/// consumed by [`ClusterStore::recover_from_disk`] — every coordinator's
/// in-memory state (directory, view, handover, object tables) is gone and
/// must come back from the on-disk logs.
#[derive(Debug)]
pub struct ClusterSurvivors {
    nodes: BTreeMap<ShardId, SurvivingNodes>,
}

impl ClusterSurvivors {
    /// The shards with surviving node fabrics, sorted.
    pub fn shards(&self) -> Vec<ShardId> {
        self.nodes.keys().copied().collect()
    }

    /// Drop one shard's surviving nodes — models a machine that never came
    /// back from the outage. Its keys recover as honestly unavailable.
    pub fn lose_shard(&mut self, shard: ShardId) -> bool {
        self.nodes.remove(&shard).is_some()
    }
}

/// What [`ClusterStore::recover_from_disk`] found and did, for assertions
/// and operator visibility.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ClusterRecoveryReport {
    /// Complete metalog records replayed from `cluster.meta`.
    pub meta_records_replayed: usize,
    /// True if the metalog ended in a partially written record (tolerated:
    /// replay stops at the last complete record).
    pub meta_torn_tail: bool,
    /// True if the crash interrupted a prepared-but-uncommitted handover,
    /// which recovery rolled back exactly like
    /// [`ClusterStore::abort_handover`].
    pub handover_rolled_back: bool,
    /// Per-shard WAL replay reports for every shard that had survivors.
    pub shard_reports: BTreeMap<ShardId, RecoveryReport>,
    /// Durable copies deleted because the directory credits a different
    /// shard — leftovers of rolled-back or crash-interrupted transfers.
    pub strays_evicted: u64,
    /// Durable objects the directory never learned (the shard committed,
    /// the crash ate the `DirPut`), re-adopted into the directory.
    pub adopted: u64,
    /// Directory entries dropped because the recovered owner lost the
    /// bytes (un-synced WAL tail); those keys read as honestly unknown.
    pub directory_dropped: u64,
    /// True if recovered state still references shards outside the
    /// committed view — [`ClusterStore::replan_skipped`] will re-home them.
    pub pending_replan: bool,
}

/// What one placement unit is.
#[derive(Debug, Clone)]
enum UnitKind {
    /// A sealed coding group, identified by its id at the source shard.
    Group { gid: GroupId },
    /// An individually placed object.
    Whole { name: String },
}

/// One planned unit migration within a handover.
#[derive(Debug, Clone)]
struct UnitMove {
    from: ShardId,
    to: ShardId,
    kind: UnitKind,
    /// Set once the transfer lands: the member names now also present at
    /// `to`, and (for groups) the id the destination assigned.
    landed: Option<(Vec<String>, Option<GroupId>)>,
}

/// In-flight two-phase view transition.
struct Handover {
    target: MembershipView,
    moves: Vec<UnitMove>,
    cursor: usize,
    /// Keys dual-written during the transition, mapped to their owner
    /// under the target view (the copy that wins at commit).
    dual: BTreeMap<String, ShardId>,
    /// Secondary location of every transferred member (dual-serve reads).
    moved: HashMap<String, ShardId>,
}

/// A sharded, epoch-stamped front-end over many coordinator shards.
pub struct ClusterStore {
    spec: CodeSpec,
    config: GroupConfig,
    shards: BTreeMap<ShardId, DistributedStore>,
    up: BTreeMap<ShardId, bool>,
    view: MembershipView,
    /// Authoritative object location. Placement of new keys comes from the
    /// ring; the directory is what lets *groups* (not keys) migrate.
    directory: HashMap<String, ShardId>,
    /// Placement key per sealed group, probed so the group's ring position
    /// is its sealing shard — the trick that gives consistent-hashing
    /// minimal movement at group granularity.
    pkeys: HashMap<(ShardId, GroupId), String>,
    handover: Option<Handover>,
    stats: ClusterStats,
    recorder: Recorder,
    registry: Option<Registry>,
    clock: Option<Arc<VirtualClock>>,
    /// When set, each shard's WAL is the file `shard-<id>.wal` in this
    /// directory (synced per [`GroupConfig::fsync`]; a directory of
    /// `wal.NNNNNN.seg` segments instead when
    /// [`GroupConfig::segment_bytes`] is non-zero), the cluster's control
    /// state is write-ahead logged to `cluster.meta` alongside them, and
    /// [`ClusterStore::restart_shard_from_disk`] /
    /// [`ClusterStore::recover_from_disk`] can rebuild a shard — or the
    /// whole cluster — purely from disk.
    wal_dir: Option<std::path::PathBuf>,
    /// The cluster metalog (see [`crate::metalog`]): directory mutations,
    /// handover phases, and epoch bumps are appended here **before** they
    /// are applied. `None` without a WAL directory.
    meta: Option<MetaLog>,
    /// True while some placement unit is known to sit away from where the
    /// committed ring wants it — a transfer was skipped (shard down), or a
    /// departed member still holds directory-owned keys. Cleared when a
    /// [`ClusterStore::replan_skipped`] pass lands everything.
    pending_replan: bool,
}

impl ClusterStore {
    /// A cluster over `members` shards, each a [`DistributedStore`] of the
    /// given code with its own write-ahead log, routed by a ring with
    /// `vnodes` points per shard. The genesis view is epoch 1.
    pub fn new(
        spec: CodeSpec,
        config: GroupConfig,
        members: &[ShardId],
        vnodes: usize,
    ) -> Result<Self, ClusterError> {
        Self::build(spec, config, members, vnodes, None)
    }

    /// Like [`ClusterStore::new`], but every shard's WAL is a file in
    /// `dir` (`shard-<id>.wal`, created as needed), synced according to
    /// `config.fsync`. A shard can then be rebuilt from nothing but its
    /// on-disk log via [`ClusterStore::restart_shard_from_disk`].
    pub fn with_wal_dir(
        spec: CodeSpec,
        config: GroupConfig,
        members: &[ShardId],
        vnodes: usize,
        dir: impl Into<std::path::PathBuf>,
    ) -> Result<Self, ClusterError> {
        Self::build(spec, config, members, vnodes, Some(dir.into()))
    }

    fn build(
        spec: CodeSpec,
        config: GroupConfig,
        members: &[ShardId],
        vnodes: usize,
        wal_dir: Option<std::path::PathBuf>,
    ) -> Result<Self, ClusterError> {
        let mut cluster = ClusterStore {
            spec,
            config,
            shards: BTreeMap::new(),
            up: BTreeMap::new(),
            view: MembershipView::genesis(members, vnodes),
            directory: HashMap::new(),
            pkeys: HashMap::new(),
            handover: None,
            stats: ClusterStats::default(),
            recorder: Recorder::disabled(),
            registry: None,
            clock: None,
            wal_dir,
            meta: None,
            pending_replan: false,
        };
        if cluster.wal_dir.is_some() {
            let mut meta = MetaLog::new(cluster.open_meta_backend()?);
            // The genesis view is the first committed fact: a restart must
            // know the member set and vnode count before anything else.
            meta.append(&MetaRecord::ViewCommit {
                epoch: cluster.view.epoch(),
                members: cluster.view.members().to_vec(),
                vnodes: cluster.view.ring().vnodes(),
            })
            .map_err(wal_err)?;
            cluster.meta = Some(meta);
        }
        for &s in cluster.view.members().to_vec().iter() {
            cluster.ensure_shard(s)?;
        }
        Ok(cluster)
    }

    /// Open the metalog's backing log in the WAL directory: the single
    /// file `cluster.meta`, or a `cluster.meta.d/` segment directory when
    /// [`GroupConfig::segment_bytes`] asks for O(1) truncation.
    fn open_meta_backend(&self) -> Result<Box<dyn rain_storage::LogBackend>, ClusterError> {
        let dir = self.wal_dir.as_ref().expect("caller checked wal_dir");
        let log = if self.config.segment_bytes > 0 {
            FileLog::open_segmented(
                dir.join("cluster.meta.d"),
                self.config.fsync,
                self.config.segment_bytes,
            )
        } else {
            FileLog::open(dir.join("cluster.meta"), self.config.fsync)
        }
        .map_err(wal_err)?;
        Ok(Box::new(log))
    }

    /// The on-disk WAL path for shard `s`, when file-backed: the file
    /// `shard-<s>.wal`, or the segment directory `shard-<s>.wal.d` when
    /// [`GroupConfig::segment_bytes`] is non-zero.
    fn shard_wal_path(&self, s: ShardId) -> Option<std::path::PathBuf> {
        self.wal_dir.as_ref().map(|d| {
            if self.config.segment_bytes > 0 {
                d.join(format!("shard-{s}.wal.d"))
            } else {
                d.join(format!("shard-{s}.wal"))
            }
        })
    }

    /// Open (creating if absent) shard `s`'s on-disk log, honouring the
    /// single-file vs segmented layout choice.
    fn open_shard_log(&self, s: ShardId) -> Result<FileLog, ClusterError> {
        let path = self.shard_wal_path(s).expect("caller checked wal_dir");
        if self.config.segment_bytes > 0 {
            FileLog::open_segmented(path, self.config.fsync, self.config.segment_bytes)
        } else {
            FileLog::open(path, self.config.fsync)
        }
        .map_err(wal_err)
    }

    fn ensure_shard(&mut self, s: ShardId) -> Result<(), ClusterError> {
        if self.shards.contains_key(&s) {
            return Ok(());
        }
        let code = build_code(self.spec).map_err(StorageError::from)?;
        let mut store = if self.wal_dir.is_some() {
            let log = self.open_shard_log(s)?;
            DistributedStore::with_wal(code, self.config, Box::new(log))
        } else {
            DistributedStore::with_wal(code, self.config, Box::new(MemLog::new()))
        };
        if let Some(reg) = &self.registry {
            store.attach_registry(reg);
        }
        self.shards.insert(s, store);
        self.up.insert(s, true);
        Ok(())
    }

    /// Crash-restart one file-backed shard: the coordinator's memory is
    /// discarded (along with its in-memory log handle — any batched,
    /// un-synced WAL tail is genuinely lost, as in a real process crash)
    /// and rebuilt by replaying the shard's on-disk log against its
    /// surviving node fabric. The shard comes back up on success.
    ///
    /// Errors if the cluster was not built with
    /// [`ClusterStore::with_wal_dir`] or the shard does not exist.
    pub fn restart_shard_from_disk(&mut self, s: ShardId) -> Result<RecoveryReport, ClusterError> {
        if self.wal_dir.is_none() {
            return Err(ClusterError::Storage(StorageError::Recovery {
                reason: "restart_from_disk needs a file-backed cluster (with_wal_dir)".to_string(),
            }));
        }
        let store = self.shards.remove(&s).ok_or(ClusterError::ShardDown(s))?;
        // The returned in-memory WAL handle is dropped on the floor:
        // recovery must read the log back from the filesystem.
        let (nodes, _discarded) = store.crash();
        let file = self.open_shard_log(s)?;
        let code = build_code(self.spec).map_err(StorageError::from)?;
        let (mut rebuilt, report) =
            DistributedStore::recover(code, self.config, nodes, WriteAheadLog::new(Box::new(file)))
                .map_err(ClusterError::Storage)?;
        if let Some(reg) = &self.registry {
            rebuilt.attach_registry(reg);
        }
        self.shards.insert(s, rebuilt);
        self.up.insert(s, true);
        Ok(report)
    }

    /// Attach a telemetry registry: every shard records its store metrics
    /// into it (aggregated across shards), and the cluster layer adds its
    /// own gauges, counters, and handover spans — all on virtual clocks, so
    /// snapshots replay bit-identically.
    pub fn attach_registry(&mut self, registry: &Registry) {
        let clock = Arc::new(VirtualClock::new());
        self.recorder = Recorder::new(registry.clone(), clock.clone());
        self.clock = Some(clock);
        self.registry = Some(registry.clone());
        for store in self.shards.values_mut() {
            store.attach_registry(registry);
        }
        self.publish_gauges();
    }

    /// Append one metalog record (a no-op without a WAL directory), then
    /// auto-checkpoint the control state if the
    /// [`GroupConfig::checkpoint_every`] interval has elapsed. Checkpoints
    /// are only taken between handovers: transition records must stay in
    /// the log until their commit or abort is durable.
    fn meta_append(&mut self, record: MetaRecord) -> Result<(), ClusterError> {
        let Some(meta) = &mut self.meta else {
            return Ok(());
        };
        meta.append(&record).map_err(wal_err)?;
        let every = self.config.checkpoint_every;
        if every > 0 && self.handover.is_none() && meta.since_checkpoint() >= every {
            let ckpt = self.meta_checkpoint_record();
            self.meta
                .as_mut()
                .expect("checked above")
                .append(&ckpt)
                .map_err(wal_err)?;
        }
        Ok(())
    }

    /// Snapshot the committed control state into a checkpoint record:
    /// view, directory, and pkey assignments, each sorted so the record is
    /// deterministic.
    fn meta_checkpoint_record(&self) -> MetaRecord {
        let mut directory: Vec<(String, ShardId)> = self
            .directory
            .iter()
            .map(|(k, &s)| (k.clone(), s))
            .collect();
        directory.sort();
        let mut pkeys: Vec<(ShardId, GroupId, String)> = self
            .pkeys
            .iter()
            .map(|(&(s, g), p)| (s, g, p.clone()))
            .collect();
        pkeys.sort();
        MetaRecord::Checkpoint {
            epoch: self.view.epoch(),
            members: self.view.members().to_vec(),
            vnodes: self.view.ring().vnodes(),
            directory,
            pkeys,
        }
    }

    /// The committed epoch.
    pub fn epoch(&self) -> u64 {
        self.view.epoch()
    }

    /// The committed view.
    pub fn view(&self) -> &MembershipView {
        &self.view
    }

    /// True while a handover is in flight.
    pub fn handover_in_progress(&self) -> bool {
        self.handover.is_some()
    }

    /// Cluster-level running totals.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// Borrow one shard's coordinator (admin/test access).
    pub fn shard(&self, s: ShardId) -> Option<&DistributedStore> {
        self.shards.get(&s)
    }

    /// Mutably borrow one shard's coordinator, e.g. to fail or repair
    /// individual storage nodes inside it.
    pub fn shard_mut(&mut self, s: ShardId) -> Option<&mut DistributedStore> {
        self.shards.get_mut(&s)
    }

    /// Objects tracked across all shards.
    pub fn num_objects(&self) -> usize {
        self.directory.len()
    }

    /// Mark a shard down: requests routed to it fail with
    /// [`ClusterError::ShardDown`] until [`ClusterStore::recover_shard`].
    pub fn fail_shard(&mut self, s: ShardId) {
        if let Some(up) = self.up.get_mut(&s) {
            *up = false;
        }
    }

    /// Mark a failed shard up again (its coordinator state survived — the
    /// per-shard WAL crash/recovery path is exercised at the
    /// [`DistributedStore`] level).
    pub fn recover_shard(&mut self, s: ShardId) {
        if let Some(up) = self.up.get_mut(&s) {
            *up = true;
        }
    }

    /// True if the shard exists and is up.
    pub fn shard_up(&self, s: ShardId) -> bool {
        self.up.get(&s).copied().unwrap_or(false)
    }

    /// Advance virtual time on every live shard's transport (and the
    /// cluster's own span clock).
    pub fn advance_time(&mut self, step: SimDuration) {
        for (s, store) in self.shards.iter_mut() {
            if self.up[s] {
                store.advance_time(step);
            }
        }
        if let Some(meta) = &mut self.meta {
            // Interval fsync policies batch metalog appends exactly like
            // shard WAL appends; a failed interval commit keeps its bytes
            // pending and the next append or sync retries.
            let _ = meta.advance_clock(step);
        }
        if let Some(clock) = &self.clock {
            clock.advance_micros(step.as_micros());
        }
    }

    fn check_epoch_write(&mut self, stamped: u64) -> Result<(), ClusterError> {
        let current = self.view.epoch();
        if stamped != current {
            self.stats.stale_writes_rejected += 1;
            return Err(ClusterError::StaleEpoch { stamped, current });
        }
        Ok(())
    }

    /// Store (or overwrite) an object. The write goes to the key's owner
    /// under the committed view; during a handover it is additionally
    /// applied to the key's owner under the target view (dual-logged in
    /// both shards' WALs), so the bytes survive whichever way the
    /// transition resolves. If the target-view owner is down the write
    /// still acks on the committed owner, and the commit-time dual
    /// override pins the key there — an acked overwrite is never
    /// superseded by a transferred unit's older snapshot. Rejects stale
    /// epoch stamps.
    pub fn store(&mut self, key: &str, data: &[u8], epoch: u64) -> Result<(), ClusterError> {
        self.check_epoch_write(epoch)?;
        let primary = match self.directory.get(key) {
            Some(&s) => s,
            None => self.view.owner_of(key).ok_or(ClusterError::NoOwner)?,
        };
        if !self.shard_up(primary) {
            return Err(ClusterError::ShardDown(primary));
        }
        self.shards
            .get_mut(&primary)
            .expect("directory names a shard")
            .store(key, data)?;
        if self.directory.get(key) != Some(&primary) {
            // The bytes are shard-durable; record the ownership *before*
            // the directory learns it. A crash between the two leaves a
            // durable object with no entry — recovery adopts it back.
            self.meta_append(MetaRecord::DirPut {
                key: key.to_string(),
                shard: primary,
            })?;
        }
        self.directory.insert(key.to_string(), primary);
        // During a handover, decide where the write must additionally land
        // (dual-log) and which copy must win at commit (dual override).
        let (dual_store, dual_override) = match &self.handover {
            Some(h) => match h.target.owner_of(key) {
                Some(t) => {
                    let stale_secondary = h
                        .moved
                        .get(key)
                        .copied()
                        .filter(|&d| d != t && d != primary);
                    if t != primary && self.up.get(&t).copied().unwrap_or(false) {
                        (Some(t), Some(t))
                    } else if t != primary {
                        // The target-view owner is down, so the fresh bytes
                        // exist only at the committed owner. Point the dual
                        // override there: commit must collapse the key onto
                        // this copy, not onto a transferred unit's
                        // pre-overwrite snapshot (nor onto a dual copy an
                        // earlier overwrite left at `t`).
                        (None, Some(primary))
                    } else if stale_secondary.is_some() {
                        // The key stays home under the target view, but an
                        // already-transferred unit may hold a now-stale
                        // copy of it elsewhere; the dual override at commit
                        // clears it.
                        (None, Some(t))
                    } else {
                        (None, None)
                    }
                }
                None => (None, None),
            },
            None => (None, None),
        };
        if let Some(t) = dual_store {
            self.shards
                .get_mut(&t)
                .expect("target view members have shards")
                .store(key, data)?;
            self.stats.dual_writes += 1;
        }
        if let Some(winner) = dual_override {
            let h = self.handover.as_ref().expect("override implies handover");
            if h.dual.get(key) != Some(&winner) {
                self.meta_append(MetaRecord::DualOverride {
                    key: key.to_string(),
                    shard: winner,
                })?;
            }
            self.handover
                .as_mut()
                .expect("override implies handover")
                .dual
                .insert(key.to_string(), winner);
        }
        Ok(())
    }

    /// Retrieve an object. The authoritative owner serves; while a
    /// handover is in flight and the owner cannot (down, or too few
    /// symbols), the read falls back to the key's secondary copy — the
    /// dual-written bytes or the transferred unit (**dual-serve**). A
    /// stale epoch stamp does not fail a read: the directory forwards it
    /// (counted in [`ClusterStats::forwarded_reads`]; a stamp *ahead* of
    /// the committed epoch is served too but counted in
    /// [`ClusterStats::future_stamped_reads`] instead).
    pub fn retrieve(
        &mut self,
        key: &str,
        policy: SelectionPolicy,
        epoch: u64,
    ) -> Result<ClusterRead, ClusterError> {
        let current = self.view.epoch();
        if epoch < current {
            self.stats.forwarded_reads += 1;
        } else if epoch > current {
            self.stats.future_stamped_reads += 1;
        }
        let Some(&primary) = self.directory.get(key) else {
            return Err(ClusterError::Storage(StorageError::UnknownObject {
                object: key.to_string(),
            }));
        };
        let primary_err: ClusterError = if self.shard_up(primary) {
            match self
                .shards
                .get_mut(&primary)
                .expect("directory names a shard")
                .retrieve(key, policy)
            {
                Ok((bytes, report)) => {
                    return Ok(ClusterRead {
                        bytes,
                        shard: primary,
                        report,
                        fallback: false,
                    });
                }
                Err(e @ StorageError::NotEnoughNodes { .. }) => e.into(),
                Err(e) => return Err(e.into()),
            }
        } else {
            ClusterError::ShardDown(primary)
        };
        // Dual-serve: a dual-written copy holds the newest bytes and is the
        // only safe fallback when one exists — a transferred unit's
        // snapshot predates it by construction. If the dual copy cannot
        // serve (its shard down, or the dual copy *is* the failed
        // primary), the read fails honestly rather than surfacing the
        // superseded snapshot.
        let secondary = match &self.handover {
            Some(h) => match h.dual.get(key) {
                Some(&t) => (t != primary).then_some(t),
                None => h.moved.get(key).copied().filter(|&d| d != primary),
            },
            None => None,
        };
        if let Some(s) = secondary {
            if self.shard_up(s) {
                match self
                    .shards
                    .get_mut(&s)
                    .expect("secondary names a shard")
                    .retrieve(key, policy)
                {
                    Ok((bytes, report)) => {
                        return Ok(ClusterRead {
                            bytes,
                            shard: s,
                            report,
                            fallback: true,
                        });
                    }
                    Err(StorageError::NotEnoughNodes { .. })
                    | Err(StorageError::UnknownObject { .. }) => {}
                    Err(e) => return Err(e.into()),
                }
            }
        }
        Err(primary_err)
    }

    /// Delete an object everywhere it lives (owner, plus any handover
    /// secondary). Rejects stale epoch stamps.
    pub fn delete(&mut self, key: &str, epoch: u64) -> Result<(), ClusterError> {
        self.check_epoch_write(epoch)?;
        let Some(&primary) = self.directory.get(key) else {
            return Err(ClusterError::Storage(StorageError::UnknownObject {
                object: key.to_string(),
            }));
        };
        if !self.shard_up(primary) {
            return Err(ClusterError::ShardDown(primary));
        }
        self.shards
            .get_mut(&primary)
            .expect("directory names a shard")
            .delete(key)?;
        // Logged *after* the shard-level delete: logging first would let a
        // crash resurrect the key (directory forgets it while the shard
        // still serves it), logging after merely re-deletes at recovery.
        self.meta_append(MetaRecord::DirDel {
            key: key.to_string(),
        })?;
        self.directory.remove(key);
        let mut extra: Vec<ShardId> = Vec::new();
        if let Some(h) = &mut self.handover {
            if let Some(t) = h.dual.remove(key) {
                extra.push(t);
            }
            if let Some(d) = h.moved.remove(key) {
                extra.push(d);
            }
        }
        for s in extra {
            if s != primary && self.shard_up(s) {
                match self.shards.get_mut(&s).expect("named shard").delete(key) {
                    Ok(()) | Err(StorageError::UnknownObject { .. }) => {}
                    Err(e) => return Err(e.into()),
                }
            }
        }
        Ok(())
    }

    /// Repair one storage node inside one shard (routed admin operation).
    /// Returns the symbols repaired.
    pub fn repair_node(&mut self, shard: ShardId, node: NodeId) -> Result<usize, ClusterError> {
        if !self.shard_up(shard) {
            return Err(ClusterError::ShardDown(shard));
        }
        let store = self
            .shards
            .get_mut(&shard)
            .ok_or(ClusterError::ShardDown(shard))?;
        Ok(store.repair_node(node)?)
    }

    /// Flush every live shard's open group so all grouped bytes become
    /// sealed (movable, repairable) units. A shard whose seal misses its
    /// write quorum keeps its group open — nothing acked is lost, the
    /// group simply does not move this round.
    pub fn flush_all(&mut self) {
        for (s, store) in self.shards.iter_mut() {
            if self.up[s] {
                let _ = store.flush();
            }
        }
    }

    /// Choose a placement key for a unit that must currently map to
    /// `shard`: salted probes until the ring agrees. The probe is cheap
    /// (pure hashing) and deterministic; if no salt lands within the
    /// budget the base key is used and the unit simply migrates early.
    fn probe_pkey(view: &MembershipView, shard: ShardId, base: &str) -> String {
        for salt in 0..4096u32 {
            let pkey = format!("{base}#{salt}");
            if view.owner_of(&pkey) == Some(shard) {
                return pkey;
            }
        }
        format!("{base}#0")
    }

    /// Begin a two-phase handover toward a view over `members`. Seals all
    /// open groups, computes which placement units change owner under the
    /// target ring, and returns the number of planned unit moves. Until
    /// [`ClusterStore::commit_handover`], the current view stays
    /// authoritative and the epoch does not change.
    pub fn begin_handover(&mut self, members: &[ShardId]) -> Result<usize, ClusterError> {
        if self.handover.is_some() {
            return Err(ClusterError::HandoverInProgress);
        }
        let target = self.view.successor(members);
        if target.members().is_empty() {
            return Err(ClusterError::NoOwner);
        }
        for &s in target.members() {
            self.ensure_shard(s)?;
        }
        self.flush_all();
        let mut moves = Vec::new();
        let mut new_pkeys: Vec<(ShardId, GroupId, String)> = Vec::new();
        let shard_ids: Vec<ShardId> = self.shards.keys().copied().collect();
        for s in shard_ids {
            if !self.up[&s] {
                continue;
            }
            let store = &self.shards[&s];
            for gid in store.sealed_group_ids() {
                let pkey = match self.pkeys.get(&(s, gid)) {
                    Some(p) => p.clone(),
                    None => {
                        let p = Self::probe_pkey(&self.view, s, &format!("unit/{s}/{gid}"));
                        self.pkeys.insert((s, gid), p.clone());
                        new_pkeys.push((s, gid, p.clone()));
                        p
                    }
                };
                let dst = target.owner_of(&pkey).expect("target view is non-empty");
                if dst != s {
                    moves.push(UnitMove {
                        from: s,
                        to: dst,
                        kind: UnitKind::Group { gid },
                        landed: None,
                    });
                }
            }
            for name in self.shards[&s].whole_object_names() {
                let dst = target.owner_of(&name).expect("target view is non-empty");
                if dst != s {
                    moves.push(UnitMove {
                        from: s,
                        to: dst,
                        kind: UnitKind::Whole { name },
                        landed: None,
                    });
                }
            }
        }
        // Probed placement keys are deterministic in the committed view,
        // so logging them after the in-memory insert is safe: a crash here
        // re-probes the identical keys. The prepare record is the durable
        // transition marker — everything between it and the matching
        // commit/abort rolls back at recovery.
        for (s, gid, pkey) in new_pkeys {
            self.meta_append(MetaRecord::PkeyAssign {
                shard: s,
                gid,
                pkey,
            })?;
        }
        self.meta_append(MetaRecord::HandoverPrepare {
            members: target.members().to_vec(),
        })?;
        let planned = moves.len();
        let mut span = span!(
            self.recorder,
            "cluster.handover.begin",
            target_epoch = target.epoch(),
            moves = planned as u64
        );
        span.field("members", members.len() as u64);
        self.handover = Some(Handover {
            target,
            moves,
            cursor: 0,
            dual: BTreeMap::new(),
            moved: HashMap::new(),
        });
        Ok(planned)
    }

    /// Transfer the next planned unit. Returns the symbols it cost
    /// (`Ok(Some(0))` for a skipped unit — source or destination down, or
    /// the unit unreadable right now), or `Ok(None)` when no moves remain.
    pub fn transfer_next(&mut self) -> Result<Option<u64>, ClusterError> {
        let h = self.handover.as_mut().ok_or(ClusterError::NoHandover)?;
        let Some(mv) = h.moves.get(h.cursor).cloned() else {
            return Ok(None);
        };
        let idx = h.cursor;
        h.cursor += 1;
        let src_up = self.up.get(&mv.from).copied().unwrap_or(false);
        let dst_up = self.up.get(&mv.to).copied().unwrap_or(false);
        if !src_up || !dst_up {
            self.stats.transfer_skips += 1;
            return Ok(Some(0));
        }
        let mut span = span!(
            self.recorder,
            "cluster.handover.transfer",
            from = mv.from as u64,
            to = mv.to as u64
        );
        let landed = match &mv.kind {
            UnitKind::Group { gid } => {
                let export = match self
                    .shards
                    .get_mut(&mv.from)
                    .expect("move names a shard")
                    .export_group(*gid, SelectionPolicy::FirstK)
                {
                    Ok(e) => e,
                    Err(StorageError::NotEnoughNodes { .. })
                    | Err(StorageError::UnknownGroup(_)) => {
                        self.stats.transfer_skips += 1;
                        return Ok(Some(0));
                    }
                    Err(e) => return Err(e.into()),
                };
                let dst = self.shards.get_mut(&mv.to).expect("move names a shard");
                let new_gid = match dst.import_group(&export) {
                    Ok(g) => g,
                    Err(StorageError::QuorumNotReached { .. }) => {
                        self.stats.transfer_skips += 1;
                        return Ok(Some(0));
                    }
                    Err(e) => return Err(e.into()),
                };
                let symbols = dst.num_nodes() as u64;
                self.stats.groups_moved += 1;
                self.stats.symbols_transferred += symbols;
                let members: Vec<String> = export.members.iter().map(|(n, _)| n.clone()).collect();
                span.field("objects", members.len() as u64);
                span.field("symbols", symbols);
                let h = self.handover.as_ref().expect("checked above");
                let pkey = Self::probe_pkey(&h.target, mv.to, &format!("unit/{}/{new_gid}", mv.to));
                (members, Some(new_gid), symbols, Some(pkey))
            }
            UnitKind::Whole { name } => {
                let bytes = match self
                    .shards
                    .get_mut(&mv.from)
                    .expect("move names a shard")
                    .retrieve(name, SelectionPolicy::FirstK)
                {
                    Ok((bytes, _)) => bytes,
                    Err(StorageError::NotEnoughNodes { .. })
                    | Err(StorageError::UnknownObject { .. }) => {
                        self.stats.transfer_skips += 1;
                        return Ok(Some(0));
                    }
                    Err(e) => return Err(e.into()),
                };
                let dst = self.shards.get_mut(&mv.to).expect("move names a shard");
                match dst.store(name, &bytes) {
                    Ok(()) => {}
                    Err(StorageError::QuorumNotReached { .. }) => {
                        self.stats.transfer_skips += 1;
                        return Ok(Some(0));
                    }
                    Err(e) => return Err(e.into()),
                }
                let symbols = dst.num_nodes() as u64;
                self.stats.wholes_moved += 1;
                self.stats.symbols_transferred += symbols;
                span.field("symbols", symbols);
                (vec![name.clone()], None, symbols, None)
            }
        };
        let (members, new_gid, symbols, pkey) = landed;
        // The unit is shard-durable at the destination; record the landing
        // (and the imported group's placement key) before the in-memory
        // bookkeeping. A crash in between leaves a stray destination copy
        // the recovery sweep evicts — exactly the abort semantics.
        if let (Some(gid_new), Some(p)) = (new_gid, &pkey) {
            self.meta_append(MetaRecord::PkeyAssign {
                shard: mv.to,
                gid: gid_new,
                pkey: p.clone(),
            })?;
        }
        let unit = match &mv.kind {
            UnitKind::Group { gid } => MetaUnit::Group {
                gid: *gid,
                new_gid: new_gid.expect("landed groups carry their id"),
            },
            UnitKind::Whole { name } => MetaUnit::Whole { name: name.clone() },
        };
        self.meta_append(MetaRecord::UnitLanded {
            from: mv.from,
            to: mv.to,
            unit,
            members: members.clone(),
        })?;
        if let (Some(gid_new), Some(p)) = (new_gid, pkey) {
            self.pkeys.insert((mv.to, gid_new), p);
        }
        let h = self.handover.as_mut().expect("checked above");
        for m in &members {
            h.moved.insert(m.clone(), mv.to);
        }
        h.moves[idx].landed = Some((members, new_gid));
        Ok(Some(symbols))
    }

    /// Cut over to the target view: finish remaining transfers, evict old
    /// copies of every landed unit, repoint the directory, collapse
    /// dual-written keys onto their new owner, and advance the epoch.
    /// Returns the new epoch.
    pub fn commit_handover(&mut self) -> Result<u64, ClusterError> {
        if self.handover.is_none() {
            return Err(ClusterError::NoHandover);
        }
        while self.transfer_next()?.is_some() {}
        // The single commit record, logged before any cutover mutation: a
        // crash anywhere past this point replays the record and redoes the
        // cutover deterministically from the logged transition state.
        let commit_record = {
            let target = &self.handover.as_ref().expect("checked above").target;
            MetaRecord::ViewCommit {
                epoch: target.epoch(),
                members: target.members().to_vec(),
                vnodes: target.ring().vnodes(),
            }
        };
        self.meta_append(commit_record)?;
        let h = self.handover.take().expect("checked above");
        let mut span = span!(
            self.recorder,
            "cluster.handover.commit",
            epoch = h.target.epoch()
        );
        let mut evicted = 0u64;
        for mv in &h.moves {
            let Some((members, _)) = &mv.landed else {
                continue; // skipped: the unit stays with its old owner
            };
            match &mv.kind {
                UnitKind::Group { gid } => {
                    if self.shard_up(mv.from) {
                        match self
                            .shards
                            .get_mut(&mv.from)
                            .expect("move names a shard")
                            .evict_group(*gid)
                        {
                            Ok(_) => evicted += 1,
                            // Already gone (every member overwritten or
                            // deleted during the transition).
                            Err(StorageError::UnknownGroup(_)) => {}
                            Err(e) => return Err(e.into()),
                        }
                    }
                    self.pkeys.remove(&(mv.from, *gid));
                }
                UnitKind::Whole { name } => {
                    // Drop the source copy only when it is superseded. If
                    // the dual override pins the key to the source (its
                    // target-view owner was down at overwrite time), the
                    // source holds the only fresh bytes — the transferred
                    // snapshot is the copy that dies, below.
                    if self.shard_up(mv.from) && h.dual.get(name) != Some(&mv.from) {
                        match self
                            .shards
                            .get_mut(&mv.from)
                            .expect("move names a shard")
                            .delete(name)
                        {
                            Ok(()) | Err(StorageError::UnknownObject { .. }) => {}
                            Err(e) => return Err(e.into()),
                        }
                    }
                }
            }
            for m in members {
                // Only repoint members that still live where the unit was
                // exported from: a key overwritten mid-transition left the
                // unit at the source and is governed by the dual override
                // below (or stayed home entirely).
                if self.directory.get(m) == Some(&mv.from) {
                    self.directory.insert(m.clone(), mv.to);
                }
            }
        }
        // Dual-written keys collapse onto their target-view owner; every
        // other copy (old owner, superseded unit snapshot) is dropped.
        for (key, t) in &h.dual {
            let mut holders: Vec<ShardId> = Vec::new();
            if let Some(&cur) = self.directory.get(key) {
                if cur != *t {
                    holders.push(cur);
                }
            } else {
                continue; // deleted during the transition
            }
            if let Some(&d) = h.moved.get(key) {
                if d != *t && !holders.contains(&d) {
                    holders.push(d);
                }
            }
            for s in holders {
                if self.shard_up(s) {
                    match self.shards.get_mut(&s).expect("named shard").delete(key) {
                        Ok(()) | Err(StorageError::UnknownObject { .. }) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            self.directory.insert(key.clone(), *t);
        }
        span.field("evicted", evicted);
        drop(span);
        self.view = h.target;
        self.stats.epoch_commits += 1;
        // Anything that did not land — a skipped transfer, or keys still
        // directory-owned by a shard outside the new view — is pending
        // replacement work for [`ClusterStore::replan_skipped`].
        self.pending_replan = h.moves.iter().any(|mv| mv.landed.is_none())
            || self.directory.values().any(|s| !self.view.contains(*s));
        self.publish_gauges();
        Ok(self.view.epoch())
    }

    /// Abandon the in-flight handover: evict every copy the transition
    /// created (imported units, dual-written keys) and keep the current
    /// view authoritative. Used when the transition was overtaken — e.g.
    /// the joining shard crashed mid-transfer.
    pub fn abort_handover(&mut self) -> Result<(), ClusterError> {
        if self.handover.is_none() {
            return Err(ClusterError::NoHandover);
        }
        // Logged before the rollback evictions: replay of a prepare
        // followed by an abort reconstructs no transition state, and the
        // stray copies (if the evictions below never ran) fall to the
        // recovery sweep.
        self.meta_append(MetaRecord::HandoverAbort)?;
        let h = self.handover.take().expect("checked above");
        let _span = span!(
            self.recorder,
            "cluster.handover.abort",
            target_epoch = h.target.epoch()
        );
        for mv in &h.moves {
            let Some((_, new_gid)) = &mv.landed else {
                continue;
            };
            if !self.shard_up(mv.to) {
                continue;
            }
            match (&mv.kind, new_gid) {
                (UnitKind::Group { .. }, Some(new_gid)) => {
                    match self
                        .shards
                        .get_mut(&mv.to)
                        .expect("move names a shard")
                        .evict_group(*new_gid)
                    {
                        Ok(_) | Err(StorageError::UnknownGroup(_)) => {}
                        Err(e) => return Err(e.into()),
                    }
                    self.pkeys.remove(&(mv.to, *new_gid));
                }
                (UnitKind::Whole { name }, _) => {
                    match self
                        .shards
                        .get_mut(&mv.to)
                        .expect("move names a shard")
                        .delete(name)
                    {
                        Ok(()) | Err(StorageError::UnknownObject { .. }) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
                (UnitKind::Group { .. }, None) => unreachable!("landed groups carry their id"),
            }
        }
        for (key, t) in &h.dual {
            if self.directory.get(key).is_some_and(|cur| cur != t) && self.shard_up(*t) {
                match self.shards.get_mut(t).expect("named shard").delete(key) {
                    Ok(()) | Err(StorageError::UnknownObject { .. }) => {}
                    Err(e) => return Err(e.into()),
                }
            }
        }
        self.stats.handover_aborts += 1;
        self.publish_gauges();
        Ok(())
    }

    /// True while some placement unit is known to sit away from where the
    /// committed ring wants it — a handover skipped its transfer (source
    /// or destination down), or a departed member still holds
    /// directory-owned keys. [`ClusterStore::replan_skipped`] clears it.
    pub fn pending_replan(&self) -> bool {
        self.pending_replan
    }

    /// Re-plan units stranded by skipped handover transfers, even though
    /// the converged membership equals the committed view: runs a full
    /// two-phase handover toward the *current* member set, which re-homes
    /// every misplaced unit the planner can reach. Returns the new epoch
    /// when at least one unit landed, `Ok(None)` when there was nothing to
    /// do or nothing could move yet (stranded shards still down — the
    /// pending flag stays set and a later call retries).
    ///
    /// Units successfully re-homed are counted in
    /// [`ClusterStats::handover_replanned`] (`cluster.handover.replanned`).
    pub fn replan_skipped(&mut self) -> Result<Option<u64>, ClusterError> {
        if !self.pending_replan || self.handover.is_some() {
            return Ok(None);
        }
        let members: Vec<ShardId> = self.view.members().to_vec();
        let planned = self.begin_handover(&members)?;
        if planned == 0 {
            // Nothing is reachable to move (the stranded shard is still
            // down, so its units were not even planned). Roll back without
            // an epoch bump and keep the flag for a later attempt.
            self.abort_handover()?;
            // Keep the flag while anything could still be stranded out of
            // the planner's sight: keys owned outside the view, or an
            // in-view shard that is down (its units were not planned).
            self.pending_replan = self.directory.values().any(|s| !self.view.contains(*s))
                || self.view.members().iter().any(|&s| !self.shard_up(s));
            return Ok(None);
        }
        while self.transfer_next()?.is_some() {}
        let landed = self
            .handover
            .as_ref()
            .expect("begin_handover installed it")
            .moves
            .iter()
            .filter(|mv| mv.landed.is_some())
            .count() as u64;
        if landed == 0 {
            // Every planned move skipped again; no epoch bump for nothing.
            self.abort_handover()?;
            return Ok(None);
        }
        self.stats.handover_replanned += landed;
        let epoch = self.commit_handover()?;
        Ok(Some(epoch))
    }

    /// Simulate a full-cluster power loss: every coordinator's memory —
    /// the directory, view, handover state, every shard's object table and
    /// log handle — is gone. What survives is each shard's node fabric
    /// (separate machines holding installed symbols) and whatever the
    /// on-disk logs had accepted; batched, un-synced log tails are lost
    /// with the writers. Feed the survivors to
    /// [`ClusterStore::recover_from_disk`].
    pub fn crash(self) -> ClusterSurvivors {
        let mut nodes = BTreeMap::new();
        for (s, store) in self.shards {
            // Each shard's in-memory WAL handle is dropped on the floor —
            // recovery must read the logs back from the filesystem.
            let (surviving, _discarded) = store.crash();
            nodes.insert(s, surviving);
        }
        ClusterSurvivors { nodes }
    }

    /// Rebuild a whole cluster from its WAL directory after a power loss:
    ///
    /// 1. **Metalog replay** — the committed view, directory, and pkey
    ///    assignments are folded back from `dir/cluster.meta`; a
    ///    prepare-logged handover with no commit is rolled back (an abort
    ///    record is appended), and a logged commit whose cutover mutations
    ///    never ran is redone deterministically.
    /// 2. **Per-shard replay** — every surviving shard coordinator is
    ///    rebuilt from its own on-disk log against its node fabric, exactly
    ///    like [`ClusterStore::restart_shard_from_disk`]. A shard with no
    ///    survivors comes back *down* (its keys read as honest
    ///    [`ClusterError::ShardDown`]).
    /// 3. **Reconciliation sweep** — cross-log drift from the crash point
    ///    is healed: copies on shards the directory does not credit are
    ///    evicted (rollback/commit-redo strays), durable objects the
    ///    directory never learned are adopted back, and directory entries
    ///    whose recovered owner lost the bytes are dropped (the loss is
    ///    surfaced, never served wrong).
    ///
    /// Every acked object comes back bit-exact or honestly unavailable.
    pub fn recover_from_disk(
        spec: CodeSpec,
        config: GroupConfig,
        dir: impl Into<std::path::PathBuf>,
        survivors: ClusterSurvivors,
    ) -> Result<(Self, ClusterRecoveryReport), ClusterError> {
        let dir = dir.into();
        let mut cluster = ClusterStore {
            spec,
            config,
            shards: BTreeMap::new(),
            up: BTreeMap::new(),
            view: MembershipView::genesis(&[0], 1), // replaced below
            directory: HashMap::new(),
            pkeys: HashMap::new(),
            handover: None,
            stats: ClusterStats::default(),
            recorder: Recorder::disabled(),
            registry: None,
            clock: None,
            wal_dir: Some(dir),
            meta: None,
            pending_replan: false,
        };
        // 1. Metalog replay.
        let mut meta = MetaLog::new(cluster.open_meta_backend()?);
        let replay = meta.replay().map_err(wal_err)?;
        let mut report = ClusterRecoveryReport {
            meta_records_replayed: replay.records.len(),
            meta_torn_tail: replay.torn_tail,
            ..ClusterRecoveryReport::default()
        };
        let state = crate::metalog::MetaState::fold(&replay.records);
        let Some(view) = state.view else {
            return Err(ClusterError::Storage(StorageError::Recovery {
                reason: "metalog holds no committed view".to_string(),
            }));
        };
        cluster.view = view;
        cluster.directory = state.directory.into_iter().collect();
        cluster.pkeys = state
            .pkeys
            .iter()
            .map(|(&(s, g), p)| ((s, g), p.clone()))
            .collect();
        if let Some(pending) = &state.pending {
            // Prepare without commit: the transition rolls back exactly
            // like an abort. Imported copies are already invisible (the
            // directory never repointed) and fall to the sweep below; the
            // abort record keeps the *next* replay from reconstructing the
            // same dangling transition.
            report.handover_rolled_back = true;
            for (_, to, unit, _) in &pending.landed {
                if let MetaUnit::Group { new_gid, .. } = unit {
                    cluster.pkeys.remove(&(*to, *new_gid));
                }
            }
            meta.append(&MetaRecord::HandoverAbort).map_err(wal_err)?;
        }
        cluster.meta = Some(meta);
        // 2. Per-shard replay against the surviving node fabrics.
        for (s, nodes) in survivors.nodes {
            let file = cluster.open_shard_log(s)?;
            let code = build_code(cluster.spec).map_err(StorageError::from)?;
            let (store, shard_report) = DistributedStore::recover(
                code,
                cluster.config,
                nodes,
                WriteAheadLog::new(Box::new(file)),
            )
            .map_err(ClusterError::Storage)?;
            cluster.shards.insert(s, store);
            cluster.up.insert(s, true);
            report.shard_reports.insert(s, shard_report);
        }
        // Shards the control state references but nothing survived of:
        // they exist (so routing can name them) but come back down.
        let referenced: Vec<ShardId> = cluster
            .view
            .members()
            .iter()
            .copied()
            .chain(cluster.directory.values().copied())
            .collect();
        for s in referenced {
            if !cluster.shards.contains_key(&s) {
                let code = build_code(cluster.spec).map_err(StorageError::from)?;
                let store =
                    DistributedStore::with_wal(code, cluster.config, Box::new(MemLog::new()));
                cluster.shards.insert(s, store);
                cluster.up.insert(s, false);
            }
        }
        // 3. Reconciliation sweep over the recovered shards.
        cluster.reconcile_after_restart(&mut report)?;
        cluster.pending_replan = cluster
            .directory
            .values()
            .any(|s| !cluster.view.contains(*s));
        report.pending_replan = cluster.pending_replan;
        Ok((cluster, report))
    }

    /// Heal cross-log drift after a full restart. The shard WALs and the
    /// metalog are separate logs with no cross-log transaction, so a crash
    /// can leave them one record apart in either direction; each case has
    /// exactly one safe resolution:
    ///
    /// * object durable on a shard, directory credits a *different* shard
    ///   — a rollback or commit-redo stray (un-evicted old copy, dual
    ///   copy, transferred snapshot). Evict it; the credited copy rules.
    /// * object durable on a shard, directory has *no* entry — the shard
    ///   store committed but the `DirPut` never became durable. Adopt it:
    ///   the write was acked only after the shard made it durable.
    /// * directory entry whose recovered owner lacks the object — the
    ///   shard lost its un-synced WAL tail in the crash (or a logged
    ///   delete's `DirDel` was lost). Drop the entry; the key reads as
    ///   honestly unknown instead of dangling.
    fn reconcile_after_restart(
        &mut self,
        report: &mut ClusterRecoveryReport,
    ) -> Result<(), ClusterError> {
        // Who actually holds what, among recovered (up) shards.
        let mut holders: BTreeMap<String, Vec<ShardId>> = BTreeMap::new();
        for (&s, store) in &self.shards {
            if !self.up[&s] {
                continue;
            }
            for name in store.object_names() {
                holders.entry(name.to_string()).or_default().push(s);
            }
        }
        for (name, at) in &holders {
            match self.directory.get(name) {
                Some(owner) => {
                    for &s in at {
                        if s != *owner {
                            match self.shards.get_mut(&s).expect("holder exists").delete(name) {
                                Ok(()) | Err(StorageError::UnknownObject { .. }) => {
                                    report.strays_evicted += 1;
                                }
                                Err(e) => return Err(e.into()),
                            }
                        }
                    }
                }
                None => {
                    // Adopt: prefer the committed ring's pick if it holds a
                    // copy (an interrupted dual write can leave two), drop
                    // the rest.
                    let keep = self
                        .view
                        .owner_of(name)
                        .filter(|o| at.contains(o))
                        .unwrap_or(at[0]);
                    self.meta_append(MetaRecord::DirPut {
                        key: name.clone(),
                        shard: keep,
                    })?;
                    self.directory.insert(name.clone(), keep);
                    report.adopted += 1;
                    for &s in at {
                        if s != keep {
                            match self.shards.get_mut(&s).expect("holder exists").delete(name) {
                                Ok(()) | Err(StorageError::UnknownObject { .. }) => {
                                    report.strays_evicted += 1;
                                }
                                Err(e) => return Err(e.into()),
                            }
                        }
                    }
                }
            }
        }
        // Directory entries whose recovered owner lost the bytes.
        let dropped: Vec<String> = self
            .directory
            .iter()
            .filter(|(name, &owner)| {
                self.up.get(&owner).copied().unwrap_or(false)
                    && holders.get(*name).is_none_or(|at| !at.contains(&owner))
            })
            .map(|(name, _)| name.clone())
            .collect();
        for name in dropped {
            self.meta_append(MetaRecord::DirDel { key: name.clone() })?;
            self.directory.remove(&name);
            report.directory_dropped += 1;
        }
        Ok(())
    }

    /// Publish the cluster gauges: `cluster.epoch`, per-shard object
    /// counts, and the [`ClusterStats`] totals. No-op without a registry.
    pub fn publish_gauges(&self) {
        let Some(reg) = &self.registry else { return };
        reg.gauge("cluster.epoch").set(self.view.epoch() as i64);
        reg.gauge("cluster.shards")
            .set(self.view.members().len() as i64);
        reg.gauge("cluster.objects")
            .set(self.directory.len() as i64);
        for (s, store) in &self.shards {
            reg.gauge(&format!("cluster.shard{s}.objects"))
                .set(store.num_objects() as i64);
        }
        reg.gauge("cluster.epoch_commits")
            .set(self.stats.epoch_commits as i64);
        reg.gauge("cluster.handover_aborts")
            .set(self.stats.handover_aborts as i64);
        reg.gauge("cluster.groups_moved")
            .set(self.stats.groups_moved as i64);
        reg.gauge("cluster.wholes_moved")
            .set(self.stats.wholes_moved as i64);
        reg.gauge("cluster.symbols_transferred")
            .set(self.stats.symbols_transferred as i64);
        reg.gauge("cluster.transfer_skips")
            .set(self.stats.transfer_skips as i64);
        reg.gauge("cluster.stale_writes_rejected")
            .set(self.stats.stale_writes_rejected as i64);
        reg.gauge("cluster.forwarded_reads")
            .set(self.stats.forwarded_reads as i64);
        reg.gauge("cluster.future_stamped_reads")
            .set(self.stats.future_stamped_reads as i64);
        reg.gauge("cluster.dual_writes")
            .set(self.stats.dual_writes as i64);
        reg.gauge("cluster.handover.replanned")
            .set(self.stats.handover_replanned as i64);
        reg.gauge("cluster.handover.pending_replan")
            .set(i64::from(self.pending_replan));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(members: &[ShardId]) -> ClusterStore {
        ClusterStore::new(
            CodeSpec::bcode_6_4(),
            GroupConfig::small_objects(),
            members,
            48,
        )
        .expect("bcode_6_4 builds")
    }

    fn payload(i: usize, version: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|j| ((i as u64 * 131 + version * 17 + j as u64) % 251) as u8)
            .collect()
    }

    fn key(i: usize) -> String {
        format!("obj-{i:03}")
    }

    /// Seed `count` objects (every sixth one large enough to be placed
    /// whole) and seal the open groups.
    fn seed(cs: &mut ClusterStore, count: usize) {
        for i in 0..count {
            let len = if i % 6 == 5 { 9_000 } else { 600 };
            cs.store(&key(i), &payload(i, 0, len), cs.epoch()).unwrap();
        }
        cs.flush_all();
    }

    fn assert_bit_exact(cs: &mut ClusterStore, count: usize, versions: &HashMap<usize, u64>) {
        for i in 0..count {
            let len_v = versions.get(&i).copied().unwrap_or(0);
            let len = if i % 6 == 5 { 9_000 } else { 600 };
            let read = cs
                .retrieve(&key(i), SelectionPolicy::FirstK, cs.epoch())
                .unwrap_or_else(|e| panic!("{} unreadable: {e}", key(i)));
            assert_eq!(read.bytes, payload(i, len_v, len), "{} bytes", key(i));
        }
    }

    /// After a committed or aborted handover every key must live on
    /// exactly one shard: no dual copy, no unit copy left behind.
    fn assert_single_homed(cs: &ClusterStore) {
        let per_shard: usize = cs.shards.values().map(|s| s.num_objects()).sum();
        assert_eq!(per_shard, cs.num_objects(), "stray copies left behind");
    }

    #[test]
    fn routing_round_trips_and_enforces_epoch_discipline() {
        let mut cs = cluster(&[0, 1, 2]);
        assert_eq!(cs.epoch(), 1);
        seed(&mut cs, 12);
        assert_bit_exact(&mut cs, 12, &HashMap::new());

        let err = cs.store("obj-000", b"stale", 0).unwrap_err();
        assert!(matches!(
            err,
            ClusterError::StaleEpoch {
                stamped: 0,
                current: 1
            }
        ));
        assert_eq!(cs.stats().stale_writes_rejected, 1);

        // Reads with an old stamp are forwarded, not refused.
        let read = cs.retrieve("obj-001", SelectionPolicy::FirstK, 0).unwrap();
        assert_eq!(read.bytes, payload(1, 0, 600));
        assert_eq!(cs.stats().forwarded_reads, 1);

        // A stamp ahead of the committed epoch is served too, but counted
        // apart — a buggy client, not one lagging behind a view change.
        let read = cs.retrieve("obj-001", SelectionPolicy::FirstK, 99).unwrap();
        assert_eq!(read.bytes, payload(1, 0, 600));
        assert_eq!(cs.stats().forwarded_reads, 1);
        assert_eq!(cs.stats().future_stamped_reads, 1);

        cs.delete("obj-002", 1).unwrap();
        let gone = cs.retrieve("obj-002", SelectionPolicy::FirstK, 1);
        assert!(matches!(
            gone,
            Err(ClusterError::Storage(StorageError::UnknownObject { .. }))
        ));
        assert_eq!(cs.num_objects(), 11);
    }

    #[test]
    fn a_join_rebalances_units_for_one_symbol_per_node_each() {
        let mut cs = cluster(&[0, 1, 2]);
        seed(&mut cs, 60);
        let planned = cs.begin_handover(&[0, 1, 2, 3]).unwrap();
        assert!(planned > 0, "a new shard must steal some units");
        while cs.transfer_next().unwrap().is_some() {}
        let epoch = cs.commit_handover().unwrap();
        assert_eq!(epoch, 2);

        let stats = cs.stats();
        let units = stats.groups_moved + stats.wholes_moved;
        assert!(stats.groups_moved > 0, "groups must move as units");
        let n = cs.shard(0).unwrap().num_nodes() as u64;
        assert_eq!(
            stats.symbols_transferred,
            units * n,
            "each unit must cost exactly one symbol per node"
        );
        assert!(cs.shard(3).unwrap().num_objects() > 0);
        assert_bit_exact(&mut cs, 60, &HashMap::new());
        assert_single_homed(&cs);
    }

    #[test]
    fn overwrites_during_a_handover_win_after_commit() {
        let mut cs = cluster(&[0, 1, 2]);
        seed(&mut cs, 30);
        cs.begin_handover(&[0, 1, 2, 3]).unwrap();
        let mut versions = HashMap::new();
        let mut i = 0usize;
        while cs.transfer_next().unwrap().is_some() {
            let obj = (i * 7) % 30;
            let len = if obj % 6 == 5 { 9_000 } else { 600 };
            cs.store(&key(obj), &payload(obj, 1, len), cs.epoch())
                .unwrap();
            versions.insert(obj, 1);
            i += 1;
        }
        cs.commit_handover().unwrap();
        assert_bit_exact(&mut cs, 30, &versions);
        assert_single_homed(&cs);
    }

    #[test]
    fn an_overwrite_whose_target_owner_is_down_survives_commit() {
        let mut cs = cluster(&[0, 1, 2]);
        seed(&mut cs, 48);
        cs.begin_handover(&[0, 1, 2, 3]).unwrap();
        while cs.transfer_next().unwrap().is_some() {}
        // Lose the joiner once every transfer has landed, then overwrite
        // keys whose target-view owner it is: the dual write cannot apply,
        // so commit must pin each key to its committed owner's fresh copy
        // rather than repoint to the transferred pre-overwrite snapshot.
        cs.fail_shard(3);
        let candidates: Vec<(usize, String)> = {
            let h = cs.handover.as_ref().unwrap();
            (0..48)
                .filter_map(|i| {
                    let k = key(i);
                    h.moved.get(&k)?;
                    (h.target.owner_of(&k) == Some(3)).then_some((i, k))
                })
                .collect()
        };
        assert!(
            !candidates.is_empty(),
            "some transferred key targets the joiner"
        );
        let mut versions = HashMap::new();
        for (i, k) in &candidates {
            let len = if i % 6 == 5 { 9_000 } else { 600 };
            cs.store(k, &payload(*i, 1, len), cs.epoch()).unwrap();
            versions.insert(*i, 1);
        }
        assert_eq!(cs.stats().dual_writes, 0, "the target owner was down");
        cs.recover_shard(3);
        cs.commit_handover().unwrap();
        assert_bit_exact(&mut cs, 48, &versions);
        assert_single_homed(&cs);
    }

    #[test]
    fn a_superseded_unit_snapshot_is_never_served_when_the_dual_copy_is_down() {
        let mut cs = cluster(&[0, 1, 2]);
        seed(&mut cs, 72);
        // A join+leave change so a departing shard's keys can land on an
        // *existing* shard while their unit migrates to a different one.
        cs.begin_handover(&[0, 1, 3]).unwrap();
        while cs.transfer_next().unwrap().is_some() {}
        // A key whose primary, target-view owner, and transferred-unit
        // destination are three distinct shards: overwrite it (dual-applied
        // to the target owner), then lose both shards holding fresh bytes.
        let pick = {
            let h = cs.handover.as_ref().unwrap();
            (0..72).find_map(|i| {
                let k = key(i);
                let p = *cs.directory.get(&k)?;
                let d = *h.moved.get(&k)?;
                let t = h.target.owner_of(&k)?;
                (t != p && t != d && d != p).then_some((i, k, p, t))
            })
        };
        let (i, k, p, t) = pick.expect("some key has distinct primary/dual/unit shards");
        let len = if i % 6 == 5 { 9_000 } else { 600 };
        let fresh = payload(i, 1, len);
        cs.store(&k, &fresh, cs.epoch()).unwrap();
        cs.fail_shard(p);
        cs.fail_shard(t);
        // The transferred unit's shard is still up, but its snapshot
        // predates the overwrite: the read must fail honestly.
        let err = cs
            .retrieve(&k, SelectionPolicy::FirstK, cs.epoch())
            .unwrap_err();
        assert!(
            matches!(err, ClusterError::ShardDown(s) if s == p),
            "stale unit snapshot must not be served: {err}"
        );
        // With the dual copy back, the fresh bytes serve again.
        cs.recover_shard(t);
        let read = cs
            .retrieve(&k, SelectionPolicy::FirstK, cs.epoch())
            .unwrap();
        assert_eq!(read.bytes, fresh);
        assert!(read.fallback, "primary is still down");
        cs.recover_shard(p);
    }

    #[test]
    fn an_aborted_handover_leaves_no_copies_at_the_destination() {
        let mut cs = cluster(&[0, 1, 2]);
        seed(&mut cs, 30);
        cs.begin_handover(&[0, 1, 2, 3]).unwrap();
        let mut versions = HashMap::new();
        let mut i = 0usize;
        while cs.transfer_next().unwrap().is_some() {
            let obj = (i * 11) % 30;
            let len = if obj % 6 == 5 { 9_000 } else { 600 };
            cs.store(&key(obj), &payload(obj, 1, len), cs.epoch())
                .unwrap();
            versions.insert(obj, 1);
            i += 1;
        }
        assert!(cs.stats().dual_writes > 0, "handover writes must dual-log");
        cs.abort_handover().unwrap();
        assert_eq!(cs.epoch(), 1, "an abort must not advance the epoch");
        assert_eq!(
            cs.shard(3).unwrap().num_objects(),
            0,
            "every destination copy must be evicted"
        );
        assert_bit_exact(&mut cs, 30, &versions);
        assert_single_homed(&cs);
    }

    #[test]
    fn units_on_a_downed_source_are_skipped_and_recover_honestly() {
        let mut cs = cluster(&[0, 1, 2]);
        seed(&mut cs, 40);
        // Plan the handover while everyone is up, then lose shard 2: its
        // outbound units are skipped, stay directory-owned by it, and
        // read as honest unavailability until it returns.
        cs.begin_handover(&[0, 1]).unwrap();
        cs.fail_shard(2);
        while cs.transfer_next().unwrap().is_some() {}
        assert!(
            cs.stats().transfer_skips > 0,
            "downed source must be skipped"
        );
        cs.commit_handover().unwrap();
        assert_eq!(cs.epoch(), 2);

        let mut down = 0;
        for i in 0..40 {
            match cs.retrieve(&key(i), SelectionPolicy::FirstK, 2) {
                Ok(read) => {
                    let len = if i % 6 == 5 { 9_000 } else { 600 };
                    assert_eq!(read.bytes, payload(i, 0, len));
                }
                Err(ClusterError::ShardDown(2)) => down += 1,
                Err(e) => panic!("{}: unexpected {e}", key(i)),
            }
        }
        assert!(down > 0, "shard 2 owned something");

        cs.recover_shard(2);
        assert_bit_exact(&mut cs, 40, &HashMap::new());
    }

    /// Regression: units skipped during a handover used to stay stranded on
    /// their out-of-view owner until the *next* membership change happened
    /// to re-plan them. [`ClusterStore::replan_skipped`] re-homes them as
    /// soon as their source is reachable, with no membership change.
    #[test]
    fn replan_rehomes_stranded_units_without_a_membership_change() {
        let mut cs = cluster(&[0, 1, 2]);
        seed(&mut cs, 40);
        cs.begin_handover(&[0, 1]).unwrap();
        cs.fail_shard(2);
        while cs.transfer_next().unwrap().is_some() {}
        cs.commit_handover().unwrap();
        assert_eq!(cs.epoch(), 2);
        assert!(
            cs.pending_replan(),
            "skipped units must leave a pending replan, not vanish"
        );

        // While the stranded source is still down, a replan is a no-op:
        // the units stay put (and read honestly) instead of churning
        // epochs on transfers that can only skip again.
        assert_eq!(cs.replan_skipped().unwrap(), None);
        assert!(
            cs.pending_replan(),
            "still stranded while the source is down"
        );

        // The moment the source returns, a replan re-homes every stranded
        // unit into the committed member set — no membership change.
        cs.recover_shard(2);
        let epoch = cs.replan_skipped().unwrap().expect("replan must commit");
        assert_eq!(epoch, 3);
        assert!(!cs.pending_replan());
        assert!(cs.stats().handover_replanned > 0);
        assert_single_homed(&cs);
        assert_bit_exact(&mut cs, 40, &HashMap::new());

        // Converged: further replans are no-ops, no epoch churn.
        assert_eq!(cs.replan_skipped().unwrap(), None);
        assert_eq!(cs.epoch(), 3);
    }

    #[test]
    fn handover_telemetry_lands_in_the_registry() {
        let registry = Registry::new();
        let mut cs = cluster(&[0, 1, 2]);
        cs.attach_registry(&registry);
        seed(&mut cs, 24);
        cs.begin_handover(&[0, 1, 2, 3]).unwrap();
        while cs.transfer_next().unwrap().is_some() {}
        cs.commit_handover().unwrap();
        assert_eq!(registry.gauge_value("cluster.epoch"), 2);
        assert_eq!(registry.gauge_value("cluster.shards"), 4);
        assert!(registry.gauge_value("cluster.groups_moved") > 0);
        let spans = registry.spans();
        assert!(spans.iter().any(|s| s.name == "cluster.handover.begin"));
        assert!(spans.iter().any(|s| s.name == "cluster.handover.transfer"));
        assert!(spans.iter().any(|s| s.name == "cluster.handover.commit"));
    }
}
