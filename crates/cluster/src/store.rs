//! The sharded store front-end: ring-routed requests, epoch stamping, and
//! two-phase group-granularity handover.
//!
//! A [`ClusterStore`] splits the object namespace across many
//! [`DistributedStore`] coordinators (**shards**). Placement is decided by
//! the committed view's consistent-hash ring; the authoritative location of
//! every object is tracked in a directory so that *sealed coding groups* —
//! not individual objects — can be the unit of rebalancing, exactly as they
//! are the unit of repair: moving a group costs one symbol per node no
//! matter how many small objects ride inside it.
//!
//! ## Epochs
//!
//! Every request carries the epoch its client believes in. A write stamped
//! with any other epoch is **rejected** with the current epoch (the client
//! must refresh its view — acking a write routed by a dead ring could place
//! it on a shard that just ceded the key). A read stamped with an old epoch
//! is **forwarded**: the directory knows where the bytes live now, the
//! read is served, and the forward is counted so an operator can see
//! clients lagging behind a view change.
//!
//! ## Handover (joint consensus, two phases)
//!
//! A view change from `V` to `V'` runs as:
//!
//! 1. **Prepare** ([`ClusterStore::begin_handover`] +
//!    [`ClusterStore::transfer_next`]): open groups are flushed so every
//!    moving unit is sealed; each unit whose placement key maps to a
//!    different shard under `V'` is exported from its old owner and
//!    imported by its new one (both logged in the respective shards' WALs).
//!    The old owner stays authoritative: reads hit it first and fall back
//!    to the new copy only when the old one cannot serve (**dual-serve**);
//!    writes land on the old owner *and* on the key's `V'` owner
//!    (**dual-logged**), so whichever view survives has the bytes.
//! 2. **Cutover** ([`ClusterStore::commit_handover`]): remaining transfers
//!    finish, old copies of moved units are evicted, the directory repoints,
//!    dual-written keys collapse onto their `V'` owner, and the epoch
//!    advances. [`ClusterStore::abort_handover`] is the mirror image — new
//!    copies are evicted and `V` stays authoritative — used when the
//!    transition is overtaken (e.g. the joining shard crashed mid-handover).
//!
//! A unit whose source shard is down at transfer time is skipped, stays
//! owned by its (possibly dead) shard, and reads of it report honest
//! unavailability until the shard returns — never wrong bytes.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use rain_codes::{build_code, CodeSpec};
use rain_obs::{span, Recorder, Registry, VirtualClock};
use rain_sim::{NodeId, SimDuration};
use rain_storage::wal::file::FileLog;
use rain_storage::wal::{MemLog, WriteAheadLog};
use rain_storage::{
    DistributedStore, GroupConfig, GroupId, RecoveryReport, RetrieveReport, SelectionPolicy,
    StorageError,
};

use crate::ring::ShardId;
use crate::view::MembershipView;

/// Errors surfaced by the cluster routing layer.
#[derive(Debug)]
pub enum ClusterError {
    /// The request was stamped with an epoch other than the committed one.
    /// Writes get this; reads are forwarded instead.
    StaleEpoch {
        /// The epoch the client stamped.
        stamped: u64,
        /// The epoch the cluster is at.
        current: u64,
    },
    /// The shard that must serve this request is down.
    ShardDown(ShardId),
    /// The view has no members, so no shard owns the key.
    NoOwner,
    /// A handover is already in progress.
    HandoverInProgress,
    /// No handover is in progress.
    NoHandover,
    /// The owning shard failed the operation.
    Storage(StorageError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::StaleEpoch { stamped, current } => {
                write!(f, "stale epoch {stamped}, cluster is at {current}")
            }
            ClusterError::ShardDown(s) => write!(f, "shard {s} is down"),
            ClusterError::NoOwner => write!(f, "the view has no members"),
            ClusterError::HandoverInProgress => write!(f, "a handover is already in progress"),
            ClusterError::NoHandover => write!(f, "no handover is in progress"),
            ClusterError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<StorageError> for ClusterError {
    fn from(e: StorageError) -> Self {
        ClusterError::Storage(e)
    }
}

/// A successful routed read.
#[derive(Debug)]
pub struct ClusterRead {
    /// The object's bytes.
    pub bytes: Vec<u8>,
    /// The shard that served them.
    pub shard: ShardId,
    /// The shard-level retrieve report.
    pub report: RetrieveReport,
    /// True when the primary owner could not serve and the bytes came from
    /// the handover secondary (dual-serve).
    pub fallback: bool,
}

/// Running totals of cluster-level events, published as gauges by
/// [`ClusterStore::publish_gauges`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// View changes committed (epoch bumps past genesis).
    pub epoch_commits: u64,
    /// Handovers abandoned by [`ClusterStore::abort_handover`].
    pub handover_aborts: u64,
    /// Sealed coding groups rebalanced to a new owner.
    pub groups_moved: u64,
    /// Whole objects rebalanced to a new owner.
    pub wholes_moved: u64,
    /// Symbols installed by transfers — the true rebalance cost, counted
    /// per node per *unit* (group or whole), never per object.
    pub symbols_transferred: u64,
    /// Planned unit moves skipped because a shard was down or the unit
    /// could not be read/installed; the unit stayed with its old owner.
    pub transfer_skips: u64,
    /// Writes rejected for carrying a stale epoch.
    pub stale_writes_rejected: u64,
    /// Reads served despite a stale epoch stamp (directory forwarding) —
    /// the "clients lagging behind a view change" operator signal.
    pub forwarded_reads: u64,
    /// Reads stamped with an epoch *ahead* of the committed one — a buggy
    /// or future-view client, counted apart from [`Self::forwarded_reads`]
    /// so lag stays a clean signal.
    pub future_stamped_reads: u64,
    /// Writes applied to both the old and new owner during a handover.
    pub dual_writes: u64,
}

/// What one placement unit is.
#[derive(Debug, Clone)]
enum UnitKind {
    /// A sealed coding group, identified by its id at the source shard.
    Group { gid: GroupId },
    /// An individually placed object.
    Whole { name: String },
}

/// One planned unit migration within a handover.
#[derive(Debug, Clone)]
struct UnitMove {
    from: ShardId,
    to: ShardId,
    kind: UnitKind,
    /// Set once the transfer lands: the member names now also present at
    /// `to`, and (for groups) the id the destination assigned.
    landed: Option<(Vec<String>, Option<GroupId>)>,
}

/// In-flight two-phase view transition.
struct Handover {
    target: MembershipView,
    moves: Vec<UnitMove>,
    cursor: usize,
    /// Keys dual-written during the transition, mapped to their owner
    /// under the target view (the copy that wins at commit).
    dual: BTreeMap<String, ShardId>,
    /// Secondary location of every transferred member (dual-serve reads).
    moved: HashMap<String, ShardId>,
}

/// A sharded, epoch-stamped front-end over many coordinator shards.
pub struct ClusterStore {
    spec: CodeSpec,
    config: GroupConfig,
    shards: BTreeMap<ShardId, DistributedStore>,
    up: BTreeMap<ShardId, bool>,
    view: MembershipView,
    /// Authoritative object location. Placement of new keys comes from the
    /// ring; the directory is what lets *groups* (not keys) migrate.
    directory: HashMap<String, ShardId>,
    /// Placement key per sealed group, probed so the group's ring position
    /// is its sealing shard — the trick that gives consistent-hashing
    /// minimal movement at group granularity.
    pkeys: HashMap<(ShardId, GroupId), String>,
    handover: Option<Handover>,
    stats: ClusterStats,
    recorder: Recorder,
    registry: Option<Registry>,
    clock: Option<Arc<VirtualClock>>,
    /// When set, each shard's WAL is the file `shard-<id>.wal` in this
    /// directory (synced per [`GroupConfig::fsync`]) instead of an
    /// in-memory log, and [`ClusterStore::restart_shard_from_disk`] can
    /// rebuild a shard coordinator purely from its on-disk log.
    wal_dir: Option<std::path::PathBuf>,
}

impl ClusterStore {
    /// A cluster over `members` shards, each a [`DistributedStore`] of the
    /// given code with its own write-ahead log, routed by a ring with
    /// `vnodes` points per shard. The genesis view is epoch 1.
    pub fn new(
        spec: CodeSpec,
        config: GroupConfig,
        members: &[ShardId],
        vnodes: usize,
    ) -> Result<Self, ClusterError> {
        Self::build(spec, config, members, vnodes, None)
    }

    /// Like [`ClusterStore::new`], but every shard's WAL is a file in
    /// `dir` (`shard-<id>.wal`, created as needed), synced according to
    /// `config.fsync`. A shard can then be rebuilt from nothing but its
    /// on-disk log via [`ClusterStore::restart_shard_from_disk`].
    pub fn with_wal_dir(
        spec: CodeSpec,
        config: GroupConfig,
        members: &[ShardId],
        vnodes: usize,
        dir: impl Into<std::path::PathBuf>,
    ) -> Result<Self, ClusterError> {
        Self::build(spec, config, members, vnodes, Some(dir.into()))
    }

    fn build(
        spec: CodeSpec,
        config: GroupConfig,
        members: &[ShardId],
        vnodes: usize,
        wal_dir: Option<std::path::PathBuf>,
    ) -> Result<Self, ClusterError> {
        let mut cluster = ClusterStore {
            spec,
            config,
            shards: BTreeMap::new(),
            up: BTreeMap::new(),
            view: MembershipView::genesis(members, vnodes),
            directory: HashMap::new(),
            pkeys: HashMap::new(),
            handover: None,
            stats: ClusterStats::default(),
            recorder: Recorder::disabled(),
            registry: None,
            clock: None,
            wal_dir,
        };
        for &s in cluster.view.members().to_vec().iter() {
            cluster.ensure_shard(s)?;
        }
        Ok(cluster)
    }

    /// The on-disk WAL path for shard `s`, when file-backed.
    fn shard_wal_path(&self, s: ShardId) -> Option<std::path::PathBuf> {
        self.wal_dir
            .as_ref()
            .map(|d| d.join(format!("shard-{s}.wal")))
    }

    fn ensure_shard(&mut self, s: ShardId) -> Result<(), ClusterError> {
        if self.shards.contains_key(&s) {
            return Ok(());
        }
        let code = build_code(self.spec).map_err(StorageError::from)?;
        let mut store = match self.shard_wal_path(s) {
            Some(path) => DistributedStore::with_wal_file(code, self.config, path)?,
            None => DistributedStore::with_wal(code, self.config, Box::new(MemLog::new())),
        };
        if let Some(reg) = &self.registry {
            store.attach_registry(reg);
        }
        self.shards.insert(s, store);
        self.up.insert(s, true);
        Ok(())
    }

    /// Crash-restart one file-backed shard: the coordinator's memory is
    /// discarded (along with its in-memory log handle — any batched,
    /// un-synced WAL tail is genuinely lost, as in a real process crash)
    /// and rebuilt by replaying the shard's on-disk log against its
    /// surviving node fabric. The shard comes back up on success.
    ///
    /// Errors if the cluster was not built with
    /// [`ClusterStore::with_wal_dir`] or the shard does not exist.
    pub fn restart_shard_from_disk(&mut self, s: ShardId) -> Result<RecoveryReport, ClusterError> {
        let path = self.shard_wal_path(s).ok_or_else(|| {
            ClusterError::Storage(StorageError::Recovery {
                reason: "restart_from_disk needs a file-backed cluster (with_wal_dir)".to_string(),
            })
        })?;
        let store = self.shards.remove(&s).ok_or(ClusterError::ShardDown(s))?;
        // The returned in-memory WAL handle is dropped on the floor:
        // recovery must read the log back from the filesystem.
        let (nodes, _discarded) = store.crash();
        let reopen = |e| ClusterError::Storage(StorageError::Wal(e));
        let file = FileLog::open(&path, self.config.fsync).map_err(reopen)?;
        let code = build_code(self.spec).map_err(StorageError::from)?;
        let (mut rebuilt, report) =
            DistributedStore::recover(code, self.config, nodes, WriteAheadLog::new(Box::new(file)))
                .map_err(ClusterError::Storage)?;
        if let Some(reg) = &self.registry {
            rebuilt.attach_registry(reg);
        }
        self.shards.insert(s, rebuilt);
        self.up.insert(s, true);
        Ok(report)
    }

    /// Attach a telemetry registry: every shard records its store metrics
    /// into it (aggregated across shards), and the cluster layer adds its
    /// own gauges, counters, and handover spans — all on virtual clocks, so
    /// snapshots replay bit-identically.
    pub fn attach_registry(&mut self, registry: &Registry) {
        let clock = Arc::new(VirtualClock::new());
        self.recorder = Recorder::new(registry.clone(), clock.clone());
        self.clock = Some(clock);
        self.registry = Some(registry.clone());
        for store in self.shards.values_mut() {
            store.attach_registry(registry);
        }
        self.publish_gauges();
    }

    /// The committed epoch.
    pub fn epoch(&self) -> u64 {
        self.view.epoch()
    }

    /// The committed view.
    pub fn view(&self) -> &MembershipView {
        &self.view
    }

    /// True while a handover is in flight.
    pub fn handover_in_progress(&self) -> bool {
        self.handover.is_some()
    }

    /// Cluster-level running totals.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// Borrow one shard's coordinator (admin/test access).
    pub fn shard(&self, s: ShardId) -> Option<&DistributedStore> {
        self.shards.get(&s)
    }

    /// Mutably borrow one shard's coordinator, e.g. to fail or repair
    /// individual storage nodes inside it.
    pub fn shard_mut(&mut self, s: ShardId) -> Option<&mut DistributedStore> {
        self.shards.get_mut(&s)
    }

    /// Objects tracked across all shards.
    pub fn num_objects(&self) -> usize {
        self.directory.len()
    }

    /// Mark a shard down: requests routed to it fail with
    /// [`ClusterError::ShardDown`] until [`ClusterStore::recover_shard`].
    pub fn fail_shard(&mut self, s: ShardId) {
        if let Some(up) = self.up.get_mut(&s) {
            *up = false;
        }
    }

    /// Mark a failed shard up again (its coordinator state survived — the
    /// per-shard WAL crash/recovery path is exercised at the
    /// [`DistributedStore`] level).
    pub fn recover_shard(&mut self, s: ShardId) {
        if let Some(up) = self.up.get_mut(&s) {
            *up = true;
        }
    }

    /// True if the shard exists and is up.
    pub fn shard_up(&self, s: ShardId) -> bool {
        self.up.get(&s).copied().unwrap_or(false)
    }

    /// Advance virtual time on every live shard's transport (and the
    /// cluster's own span clock).
    pub fn advance_time(&mut self, step: SimDuration) {
        for (s, store) in self.shards.iter_mut() {
            if self.up[s] {
                store.advance_time(step);
            }
        }
        if let Some(clock) = &self.clock {
            clock.advance_micros(step.as_micros());
        }
    }

    fn check_epoch_write(&mut self, stamped: u64) -> Result<(), ClusterError> {
        let current = self.view.epoch();
        if stamped != current {
            self.stats.stale_writes_rejected += 1;
            return Err(ClusterError::StaleEpoch { stamped, current });
        }
        Ok(())
    }

    /// Store (or overwrite) an object. The write goes to the key's owner
    /// under the committed view; during a handover it is additionally
    /// applied to the key's owner under the target view (dual-logged in
    /// both shards' WALs), so the bytes survive whichever way the
    /// transition resolves. If the target-view owner is down the write
    /// still acks on the committed owner, and the commit-time dual
    /// override pins the key there — an acked overwrite is never
    /// superseded by a transferred unit's older snapshot. Rejects stale
    /// epoch stamps.
    pub fn store(&mut self, key: &str, data: &[u8], epoch: u64) -> Result<(), ClusterError> {
        self.check_epoch_write(epoch)?;
        let primary = match self.directory.get(key) {
            Some(&s) => s,
            None => self.view.owner_of(key).ok_or(ClusterError::NoOwner)?,
        };
        if !self.shard_up(primary) {
            return Err(ClusterError::ShardDown(primary));
        }
        self.shards
            .get_mut(&primary)
            .expect("directory names a shard")
            .store(key, data)?;
        self.directory.insert(key.to_string(), primary);
        if let Some(h) = &mut self.handover {
            let target_owner = h.target.owner_of(key);
            if let Some(t) = target_owner {
                let stale_secondary = h
                    .moved
                    .get(key)
                    .copied()
                    .filter(|&d| d != t && d != primary);
                if t != primary && self.up.get(&t).copied().unwrap_or(false) {
                    self.shards
                        .get_mut(&t)
                        .expect("target view members have shards")
                        .store(key, data)?;
                    h.dual.insert(key.to_string(), t);
                    self.stats.dual_writes += 1;
                } else if t != primary {
                    // The target-view owner is down, so the fresh bytes
                    // exist only at the committed owner. Point the dual
                    // override there: commit must collapse the key onto
                    // this copy, not onto a transferred unit's
                    // pre-overwrite snapshot (nor onto a dual copy an
                    // earlier overwrite left at `t`).
                    h.dual.insert(key.to_string(), primary);
                } else {
                    // The key stays home under the target view, but an
                    // already-transferred unit may hold a now-stale copy of
                    // it elsewhere; the dual override at commit clears it.
                    if stale_secondary.is_some() {
                        h.dual.insert(key.to_string(), t);
                    }
                }
            }
        }
        Ok(())
    }

    /// Retrieve an object. The authoritative owner serves; while a
    /// handover is in flight and the owner cannot (down, or too few
    /// symbols), the read falls back to the key's secondary copy — the
    /// dual-written bytes or the transferred unit (**dual-serve**). A
    /// stale epoch stamp does not fail a read: the directory forwards it
    /// (counted in [`ClusterStats::forwarded_reads`]; a stamp *ahead* of
    /// the committed epoch is served too but counted in
    /// [`ClusterStats::future_stamped_reads`] instead).
    pub fn retrieve(
        &mut self,
        key: &str,
        policy: SelectionPolicy,
        epoch: u64,
    ) -> Result<ClusterRead, ClusterError> {
        let current = self.view.epoch();
        if epoch < current {
            self.stats.forwarded_reads += 1;
        } else if epoch > current {
            self.stats.future_stamped_reads += 1;
        }
        let Some(&primary) = self.directory.get(key) else {
            return Err(ClusterError::Storage(StorageError::UnknownObject {
                object: key.to_string(),
            }));
        };
        let primary_err: ClusterError = if self.shard_up(primary) {
            match self
                .shards
                .get_mut(&primary)
                .expect("directory names a shard")
                .retrieve(key, policy)
            {
                Ok((bytes, report)) => {
                    return Ok(ClusterRead {
                        bytes,
                        shard: primary,
                        report,
                        fallback: false,
                    });
                }
                Err(e @ StorageError::NotEnoughNodes { .. }) => e.into(),
                Err(e) => return Err(e.into()),
            }
        } else {
            ClusterError::ShardDown(primary)
        };
        // Dual-serve: a dual-written copy holds the newest bytes and is the
        // only safe fallback when one exists — a transferred unit's
        // snapshot predates it by construction. If the dual copy cannot
        // serve (its shard down, or the dual copy *is* the failed
        // primary), the read fails honestly rather than surfacing the
        // superseded snapshot.
        let secondary = match &self.handover {
            Some(h) => match h.dual.get(key) {
                Some(&t) => (t != primary).then_some(t),
                None => h.moved.get(key).copied().filter(|&d| d != primary),
            },
            None => None,
        };
        if let Some(s) = secondary {
            if self.shard_up(s) {
                match self
                    .shards
                    .get_mut(&s)
                    .expect("secondary names a shard")
                    .retrieve(key, policy)
                {
                    Ok((bytes, report)) => {
                        return Ok(ClusterRead {
                            bytes,
                            shard: s,
                            report,
                            fallback: true,
                        });
                    }
                    Err(StorageError::NotEnoughNodes { .. })
                    | Err(StorageError::UnknownObject { .. }) => {}
                    Err(e) => return Err(e.into()),
                }
            }
        }
        Err(primary_err)
    }

    /// Delete an object everywhere it lives (owner, plus any handover
    /// secondary). Rejects stale epoch stamps.
    pub fn delete(&mut self, key: &str, epoch: u64) -> Result<(), ClusterError> {
        self.check_epoch_write(epoch)?;
        let Some(&primary) = self.directory.get(key) else {
            return Err(ClusterError::Storage(StorageError::UnknownObject {
                object: key.to_string(),
            }));
        };
        if !self.shard_up(primary) {
            return Err(ClusterError::ShardDown(primary));
        }
        self.shards
            .get_mut(&primary)
            .expect("directory names a shard")
            .delete(key)?;
        self.directory.remove(key);
        let mut extra: Vec<ShardId> = Vec::new();
        if let Some(h) = &mut self.handover {
            if let Some(t) = h.dual.remove(key) {
                extra.push(t);
            }
            if let Some(d) = h.moved.remove(key) {
                extra.push(d);
            }
        }
        for s in extra {
            if s != primary && self.shard_up(s) {
                match self.shards.get_mut(&s).expect("named shard").delete(key) {
                    Ok(()) | Err(StorageError::UnknownObject { .. }) => {}
                    Err(e) => return Err(e.into()),
                }
            }
        }
        Ok(())
    }

    /// Repair one storage node inside one shard (routed admin operation).
    /// Returns the symbols repaired.
    pub fn repair_node(&mut self, shard: ShardId, node: NodeId) -> Result<usize, ClusterError> {
        if !self.shard_up(shard) {
            return Err(ClusterError::ShardDown(shard));
        }
        let store = self
            .shards
            .get_mut(&shard)
            .ok_or(ClusterError::ShardDown(shard))?;
        Ok(store.repair_node(node)?)
    }

    /// Flush every live shard's open group so all grouped bytes become
    /// sealed (movable, repairable) units. A shard whose seal misses its
    /// write quorum keeps its group open — nothing acked is lost, the
    /// group simply does not move this round.
    pub fn flush_all(&mut self) {
        for (s, store) in self.shards.iter_mut() {
            if self.up[s] {
                let _ = store.flush();
            }
        }
    }

    /// Choose a placement key for a unit that must currently map to
    /// `shard`: salted probes until the ring agrees. The probe is cheap
    /// (pure hashing) and deterministic; if no salt lands within the
    /// budget the base key is used and the unit simply migrates early.
    fn probe_pkey(view: &MembershipView, shard: ShardId, base: &str) -> String {
        for salt in 0..4096u32 {
            let pkey = format!("{base}#{salt}");
            if view.owner_of(&pkey) == Some(shard) {
                return pkey;
            }
        }
        format!("{base}#0")
    }

    /// Begin a two-phase handover toward a view over `members`. Seals all
    /// open groups, computes which placement units change owner under the
    /// target ring, and returns the number of planned unit moves. Until
    /// [`ClusterStore::commit_handover`], the current view stays
    /// authoritative and the epoch does not change.
    pub fn begin_handover(&mut self, members: &[ShardId]) -> Result<usize, ClusterError> {
        if self.handover.is_some() {
            return Err(ClusterError::HandoverInProgress);
        }
        let target = self.view.successor(members);
        if target.members().is_empty() {
            return Err(ClusterError::NoOwner);
        }
        for &s in target.members() {
            self.ensure_shard(s)?;
        }
        self.flush_all();
        let mut moves = Vec::new();
        let shard_ids: Vec<ShardId> = self.shards.keys().copied().collect();
        for s in shard_ids {
            if !self.up[&s] {
                continue;
            }
            let store = &self.shards[&s];
            for gid in store.sealed_group_ids() {
                let pkey = match self.pkeys.get(&(s, gid)) {
                    Some(p) => p.clone(),
                    None => {
                        let p = Self::probe_pkey(&self.view, s, &format!("unit/{s}/{gid}"));
                        self.pkeys.insert((s, gid), p.clone());
                        p
                    }
                };
                let dst = target.owner_of(&pkey).expect("target view is non-empty");
                if dst != s {
                    moves.push(UnitMove {
                        from: s,
                        to: dst,
                        kind: UnitKind::Group { gid },
                        landed: None,
                    });
                }
            }
            for name in self.shards[&s].whole_object_names() {
                let dst = target.owner_of(&name).expect("target view is non-empty");
                if dst != s {
                    moves.push(UnitMove {
                        from: s,
                        to: dst,
                        kind: UnitKind::Whole { name },
                        landed: None,
                    });
                }
            }
        }
        let planned = moves.len();
        let mut span = span!(
            self.recorder,
            "cluster.handover.begin",
            target_epoch = target.epoch(),
            moves = planned as u64
        );
        span.field("members", members.len() as u64);
        self.handover = Some(Handover {
            target,
            moves,
            cursor: 0,
            dual: BTreeMap::new(),
            moved: HashMap::new(),
        });
        Ok(planned)
    }

    /// Transfer the next planned unit. Returns the symbols it cost
    /// (`Ok(Some(0))` for a skipped unit — source or destination down, or
    /// the unit unreadable right now), or `Ok(None)` when no moves remain.
    pub fn transfer_next(&mut self) -> Result<Option<u64>, ClusterError> {
        let h = self.handover.as_mut().ok_or(ClusterError::NoHandover)?;
        let Some(mv) = h.moves.get(h.cursor).cloned() else {
            return Ok(None);
        };
        let idx = h.cursor;
        h.cursor += 1;
        let src_up = self.up.get(&mv.from).copied().unwrap_or(false);
        let dst_up = self.up.get(&mv.to).copied().unwrap_or(false);
        if !src_up || !dst_up {
            self.stats.transfer_skips += 1;
            return Ok(Some(0));
        }
        let mut span = span!(
            self.recorder,
            "cluster.handover.transfer",
            from = mv.from as u64,
            to = mv.to as u64
        );
        let landed = match &mv.kind {
            UnitKind::Group { gid } => {
                let export = match self
                    .shards
                    .get_mut(&mv.from)
                    .expect("move names a shard")
                    .export_group(*gid, SelectionPolicy::FirstK)
                {
                    Ok(e) => e,
                    Err(StorageError::NotEnoughNodes { .. })
                    | Err(StorageError::UnknownGroup(_)) => {
                        self.stats.transfer_skips += 1;
                        return Ok(Some(0));
                    }
                    Err(e) => return Err(e.into()),
                };
                let dst = self.shards.get_mut(&mv.to).expect("move names a shard");
                let new_gid = match dst.import_group(&export) {
                    Ok(g) => g,
                    Err(StorageError::QuorumNotReached { .. }) => {
                        self.stats.transfer_skips += 1;
                        return Ok(Some(0));
                    }
                    Err(e) => return Err(e.into()),
                };
                let symbols = dst.num_nodes() as u64;
                self.stats.groups_moved += 1;
                self.stats.symbols_transferred += symbols;
                let members: Vec<String> = export.members.iter().map(|(n, _)| n.clone()).collect();
                span.field("objects", members.len() as u64);
                span.field("symbols", symbols);
                let h = self.handover.as_mut().expect("checked above");
                let pkey = Self::probe_pkey(&h.target, mv.to, &format!("unit/{}/{new_gid}", mv.to));
                self.pkeys.insert((mv.to, new_gid), pkey);
                for m in &members {
                    h.moved.insert(m.clone(), mv.to);
                }
                (members, Some(new_gid), symbols)
            }
            UnitKind::Whole { name } => {
                let bytes = match self
                    .shards
                    .get_mut(&mv.from)
                    .expect("move names a shard")
                    .retrieve(name, SelectionPolicy::FirstK)
                {
                    Ok((bytes, _)) => bytes,
                    Err(StorageError::NotEnoughNodes { .. })
                    | Err(StorageError::UnknownObject { .. }) => {
                        self.stats.transfer_skips += 1;
                        return Ok(Some(0));
                    }
                    Err(e) => return Err(e.into()),
                };
                let dst = self.shards.get_mut(&mv.to).expect("move names a shard");
                match dst.store(name, &bytes) {
                    Ok(()) => {}
                    Err(StorageError::QuorumNotReached { .. }) => {
                        self.stats.transfer_skips += 1;
                        return Ok(Some(0));
                    }
                    Err(e) => return Err(e.into()),
                }
                let symbols = dst.num_nodes() as u64;
                self.stats.wholes_moved += 1;
                self.stats.symbols_transferred += symbols;
                span.field("symbols", symbols);
                let h = self.handover.as_mut().expect("checked above");
                h.moved.insert(name.clone(), mv.to);
                (vec![name.clone()], None, symbols)
            }
        };
        let h = self.handover.as_mut().expect("checked above");
        h.moves[idx].landed = Some((landed.0, landed.1));
        Ok(Some(landed.2))
    }

    /// Cut over to the target view: finish remaining transfers, evict old
    /// copies of every landed unit, repoint the directory, collapse
    /// dual-written keys onto their new owner, and advance the epoch.
    /// Returns the new epoch.
    pub fn commit_handover(&mut self) -> Result<u64, ClusterError> {
        if self.handover.is_none() {
            return Err(ClusterError::NoHandover);
        }
        while self.transfer_next()?.is_some() {}
        let h = self.handover.take().expect("checked above");
        let mut span = span!(
            self.recorder,
            "cluster.handover.commit",
            epoch = h.target.epoch()
        );
        let mut evicted = 0u64;
        for mv in &h.moves {
            let Some((members, _)) = &mv.landed else {
                continue; // skipped: the unit stays with its old owner
            };
            match &mv.kind {
                UnitKind::Group { gid } => {
                    if self.shard_up(mv.from) {
                        match self
                            .shards
                            .get_mut(&mv.from)
                            .expect("move names a shard")
                            .evict_group(*gid)
                        {
                            Ok(_) => evicted += 1,
                            // Already gone (every member overwritten or
                            // deleted during the transition).
                            Err(StorageError::UnknownGroup(_)) => {}
                            Err(e) => return Err(e.into()),
                        }
                    }
                    self.pkeys.remove(&(mv.from, *gid));
                }
                UnitKind::Whole { name } => {
                    // Drop the source copy only when it is superseded. If
                    // the dual override pins the key to the source (its
                    // target-view owner was down at overwrite time), the
                    // source holds the only fresh bytes — the transferred
                    // snapshot is the copy that dies, below.
                    if self.shard_up(mv.from) && h.dual.get(name) != Some(&mv.from) {
                        match self
                            .shards
                            .get_mut(&mv.from)
                            .expect("move names a shard")
                            .delete(name)
                        {
                            Ok(()) | Err(StorageError::UnknownObject { .. }) => {}
                            Err(e) => return Err(e.into()),
                        }
                    }
                }
            }
            for m in members {
                // Only repoint members that still live where the unit was
                // exported from: a key overwritten mid-transition left the
                // unit at the source and is governed by the dual override
                // below (or stayed home entirely).
                if self.directory.get(m) == Some(&mv.from) {
                    self.directory.insert(m.clone(), mv.to);
                }
            }
        }
        // Dual-written keys collapse onto their target-view owner; every
        // other copy (old owner, superseded unit snapshot) is dropped.
        for (key, t) in &h.dual {
            let mut holders: Vec<ShardId> = Vec::new();
            if let Some(&cur) = self.directory.get(key) {
                if cur != *t {
                    holders.push(cur);
                }
            } else {
                continue; // deleted during the transition
            }
            if let Some(&d) = h.moved.get(key) {
                if d != *t && !holders.contains(&d) {
                    holders.push(d);
                }
            }
            for s in holders {
                if self.shard_up(s) {
                    match self.shards.get_mut(&s).expect("named shard").delete(key) {
                        Ok(()) | Err(StorageError::UnknownObject { .. }) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            self.directory.insert(key.clone(), *t);
        }
        span.field("evicted", evicted);
        drop(span);
        self.view = h.target;
        self.stats.epoch_commits += 1;
        self.publish_gauges();
        Ok(self.view.epoch())
    }

    /// Abandon the in-flight handover: evict every copy the transition
    /// created (imported units, dual-written keys) and keep the current
    /// view authoritative. Used when the transition was overtaken — e.g.
    /// the joining shard crashed mid-transfer.
    pub fn abort_handover(&mut self) -> Result<(), ClusterError> {
        let h = self.handover.take().ok_or(ClusterError::NoHandover)?;
        let _span = span!(
            self.recorder,
            "cluster.handover.abort",
            target_epoch = h.target.epoch()
        );
        for mv in &h.moves {
            let Some((_, new_gid)) = &mv.landed else {
                continue;
            };
            if !self.shard_up(mv.to) {
                continue;
            }
            match (&mv.kind, new_gid) {
                (UnitKind::Group { .. }, Some(new_gid)) => {
                    match self
                        .shards
                        .get_mut(&mv.to)
                        .expect("move names a shard")
                        .evict_group(*new_gid)
                    {
                        Ok(_) | Err(StorageError::UnknownGroup(_)) => {}
                        Err(e) => return Err(e.into()),
                    }
                    self.pkeys.remove(&(mv.to, *new_gid));
                }
                (UnitKind::Whole { name }, _) => {
                    match self
                        .shards
                        .get_mut(&mv.to)
                        .expect("move names a shard")
                        .delete(name)
                    {
                        Ok(()) | Err(StorageError::UnknownObject { .. }) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
                (UnitKind::Group { .. }, None) => unreachable!("landed groups carry their id"),
            }
        }
        for (key, t) in &h.dual {
            if self.directory.get(key).is_some_and(|cur| cur != t) && self.shard_up(*t) {
                match self.shards.get_mut(t).expect("named shard").delete(key) {
                    Ok(()) | Err(StorageError::UnknownObject { .. }) => {}
                    Err(e) => return Err(e.into()),
                }
            }
        }
        self.stats.handover_aborts += 1;
        self.publish_gauges();
        Ok(())
    }

    /// Publish the cluster gauges: `cluster.epoch`, per-shard object
    /// counts, and the [`ClusterStats`] totals. No-op without a registry.
    pub fn publish_gauges(&self) {
        let Some(reg) = &self.registry else { return };
        reg.gauge("cluster.epoch").set(self.view.epoch() as i64);
        reg.gauge("cluster.shards")
            .set(self.view.members().len() as i64);
        reg.gauge("cluster.objects")
            .set(self.directory.len() as i64);
        for (s, store) in &self.shards {
            reg.gauge(&format!("cluster.shard{s}.objects"))
                .set(store.num_objects() as i64);
        }
        reg.gauge("cluster.epoch_commits")
            .set(self.stats.epoch_commits as i64);
        reg.gauge("cluster.handover_aborts")
            .set(self.stats.handover_aborts as i64);
        reg.gauge("cluster.groups_moved")
            .set(self.stats.groups_moved as i64);
        reg.gauge("cluster.wholes_moved")
            .set(self.stats.wholes_moved as i64);
        reg.gauge("cluster.symbols_transferred")
            .set(self.stats.symbols_transferred as i64);
        reg.gauge("cluster.transfer_skips")
            .set(self.stats.transfer_skips as i64);
        reg.gauge("cluster.stale_writes_rejected")
            .set(self.stats.stale_writes_rejected as i64);
        reg.gauge("cluster.forwarded_reads")
            .set(self.stats.forwarded_reads as i64);
        reg.gauge("cluster.future_stamped_reads")
            .set(self.stats.future_stamped_reads as i64);
        reg.gauge("cluster.dual_writes")
            .set(self.stats.dual_writes as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(members: &[ShardId]) -> ClusterStore {
        ClusterStore::new(
            CodeSpec::bcode_6_4(),
            GroupConfig::small_objects(),
            members,
            48,
        )
        .expect("bcode_6_4 builds")
    }

    fn payload(i: usize, version: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|j| ((i as u64 * 131 + version * 17 + j as u64) % 251) as u8)
            .collect()
    }

    fn key(i: usize) -> String {
        format!("obj-{i:03}")
    }

    /// Seed `count` objects (every sixth one large enough to be placed
    /// whole) and seal the open groups.
    fn seed(cs: &mut ClusterStore, count: usize) {
        for i in 0..count {
            let len = if i % 6 == 5 { 9_000 } else { 600 };
            cs.store(&key(i), &payload(i, 0, len), cs.epoch()).unwrap();
        }
        cs.flush_all();
    }

    fn assert_bit_exact(cs: &mut ClusterStore, count: usize, versions: &HashMap<usize, u64>) {
        for i in 0..count {
            let len_v = versions.get(&i).copied().unwrap_or(0);
            let len = if i % 6 == 5 { 9_000 } else { 600 };
            let read = cs
                .retrieve(&key(i), SelectionPolicy::FirstK, cs.epoch())
                .unwrap_or_else(|e| panic!("{} unreadable: {e}", key(i)));
            assert_eq!(read.bytes, payload(i, len_v, len), "{} bytes", key(i));
        }
    }

    /// After a committed or aborted handover every key must live on
    /// exactly one shard: no dual copy, no unit copy left behind.
    fn assert_single_homed(cs: &ClusterStore) {
        let per_shard: usize = cs.shards.values().map(|s| s.num_objects()).sum();
        assert_eq!(per_shard, cs.num_objects(), "stray copies left behind");
    }

    #[test]
    fn routing_round_trips_and_enforces_epoch_discipline() {
        let mut cs = cluster(&[0, 1, 2]);
        assert_eq!(cs.epoch(), 1);
        seed(&mut cs, 12);
        assert_bit_exact(&mut cs, 12, &HashMap::new());

        let err = cs.store("obj-000", b"stale", 0).unwrap_err();
        assert!(matches!(
            err,
            ClusterError::StaleEpoch {
                stamped: 0,
                current: 1
            }
        ));
        assert_eq!(cs.stats().stale_writes_rejected, 1);

        // Reads with an old stamp are forwarded, not refused.
        let read = cs.retrieve("obj-001", SelectionPolicy::FirstK, 0).unwrap();
        assert_eq!(read.bytes, payload(1, 0, 600));
        assert_eq!(cs.stats().forwarded_reads, 1);

        // A stamp ahead of the committed epoch is served too, but counted
        // apart — a buggy client, not one lagging behind a view change.
        let read = cs.retrieve("obj-001", SelectionPolicy::FirstK, 99).unwrap();
        assert_eq!(read.bytes, payload(1, 0, 600));
        assert_eq!(cs.stats().forwarded_reads, 1);
        assert_eq!(cs.stats().future_stamped_reads, 1);

        cs.delete("obj-002", 1).unwrap();
        let gone = cs.retrieve("obj-002", SelectionPolicy::FirstK, 1);
        assert!(matches!(
            gone,
            Err(ClusterError::Storage(StorageError::UnknownObject { .. }))
        ));
        assert_eq!(cs.num_objects(), 11);
    }

    #[test]
    fn a_join_rebalances_units_for_one_symbol_per_node_each() {
        let mut cs = cluster(&[0, 1, 2]);
        seed(&mut cs, 60);
        let planned = cs.begin_handover(&[0, 1, 2, 3]).unwrap();
        assert!(planned > 0, "a new shard must steal some units");
        while cs.transfer_next().unwrap().is_some() {}
        let epoch = cs.commit_handover().unwrap();
        assert_eq!(epoch, 2);

        let stats = cs.stats();
        let units = stats.groups_moved + stats.wholes_moved;
        assert!(stats.groups_moved > 0, "groups must move as units");
        let n = cs.shard(0).unwrap().num_nodes() as u64;
        assert_eq!(
            stats.symbols_transferred,
            units * n,
            "each unit must cost exactly one symbol per node"
        );
        assert!(cs.shard(3).unwrap().num_objects() > 0);
        assert_bit_exact(&mut cs, 60, &HashMap::new());
        assert_single_homed(&cs);
    }

    #[test]
    fn overwrites_during_a_handover_win_after_commit() {
        let mut cs = cluster(&[0, 1, 2]);
        seed(&mut cs, 30);
        cs.begin_handover(&[0, 1, 2, 3]).unwrap();
        let mut versions = HashMap::new();
        let mut i = 0usize;
        while cs.transfer_next().unwrap().is_some() {
            let obj = (i * 7) % 30;
            let len = if obj % 6 == 5 { 9_000 } else { 600 };
            cs.store(&key(obj), &payload(obj, 1, len), cs.epoch())
                .unwrap();
            versions.insert(obj, 1);
            i += 1;
        }
        cs.commit_handover().unwrap();
        assert_bit_exact(&mut cs, 30, &versions);
        assert_single_homed(&cs);
    }

    #[test]
    fn an_overwrite_whose_target_owner_is_down_survives_commit() {
        let mut cs = cluster(&[0, 1, 2]);
        seed(&mut cs, 48);
        cs.begin_handover(&[0, 1, 2, 3]).unwrap();
        while cs.transfer_next().unwrap().is_some() {}
        // Lose the joiner once every transfer has landed, then overwrite
        // keys whose target-view owner it is: the dual write cannot apply,
        // so commit must pin each key to its committed owner's fresh copy
        // rather than repoint to the transferred pre-overwrite snapshot.
        cs.fail_shard(3);
        let candidates: Vec<(usize, String)> = {
            let h = cs.handover.as_ref().unwrap();
            (0..48)
                .filter_map(|i| {
                    let k = key(i);
                    h.moved.get(&k)?;
                    (h.target.owner_of(&k) == Some(3)).then_some((i, k))
                })
                .collect()
        };
        assert!(
            !candidates.is_empty(),
            "some transferred key targets the joiner"
        );
        let mut versions = HashMap::new();
        for (i, k) in &candidates {
            let len = if i % 6 == 5 { 9_000 } else { 600 };
            cs.store(k, &payload(*i, 1, len), cs.epoch()).unwrap();
            versions.insert(*i, 1);
        }
        assert_eq!(cs.stats().dual_writes, 0, "the target owner was down");
        cs.recover_shard(3);
        cs.commit_handover().unwrap();
        assert_bit_exact(&mut cs, 48, &versions);
        assert_single_homed(&cs);
    }

    #[test]
    fn a_superseded_unit_snapshot_is_never_served_when_the_dual_copy_is_down() {
        let mut cs = cluster(&[0, 1, 2]);
        seed(&mut cs, 72);
        // A join+leave change so a departing shard's keys can land on an
        // *existing* shard while their unit migrates to a different one.
        cs.begin_handover(&[0, 1, 3]).unwrap();
        while cs.transfer_next().unwrap().is_some() {}
        // A key whose primary, target-view owner, and transferred-unit
        // destination are three distinct shards: overwrite it (dual-applied
        // to the target owner), then lose both shards holding fresh bytes.
        let pick = {
            let h = cs.handover.as_ref().unwrap();
            (0..72).find_map(|i| {
                let k = key(i);
                let p = *cs.directory.get(&k)?;
                let d = *h.moved.get(&k)?;
                let t = h.target.owner_of(&k)?;
                (t != p && t != d && d != p).then_some((i, k, p, t))
            })
        };
        let (i, k, p, t) = pick.expect("some key has distinct primary/dual/unit shards");
        let len = if i % 6 == 5 { 9_000 } else { 600 };
        let fresh = payload(i, 1, len);
        cs.store(&k, &fresh, cs.epoch()).unwrap();
        cs.fail_shard(p);
        cs.fail_shard(t);
        // The transferred unit's shard is still up, but its snapshot
        // predates the overwrite: the read must fail honestly.
        let err = cs
            .retrieve(&k, SelectionPolicy::FirstK, cs.epoch())
            .unwrap_err();
        assert!(
            matches!(err, ClusterError::ShardDown(s) if s == p),
            "stale unit snapshot must not be served: {err}"
        );
        // With the dual copy back, the fresh bytes serve again.
        cs.recover_shard(t);
        let read = cs
            .retrieve(&k, SelectionPolicy::FirstK, cs.epoch())
            .unwrap();
        assert_eq!(read.bytes, fresh);
        assert!(read.fallback, "primary is still down");
        cs.recover_shard(p);
    }

    #[test]
    fn an_aborted_handover_leaves_no_copies_at_the_destination() {
        let mut cs = cluster(&[0, 1, 2]);
        seed(&mut cs, 30);
        cs.begin_handover(&[0, 1, 2, 3]).unwrap();
        let mut versions = HashMap::new();
        let mut i = 0usize;
        while cs.transfer_next().unwrap().is_some() {
            let obj = (i * 11) % 30;
            let len = if obj % 6 == 5 { 9_000 } else { 600 };
            cs.store(&key(obj), &payload(obj, 1, len), cs.epoch())
                .unwrap();
            versions.insert(obj, 1);
            i += 1;
        }
        assert!(cs.stats().dual_writes > 0, "handover writes must dual-log");
        cs.abort_handover().unwrap();
        assert_eq!(cs.epoch(), 1, "an abort must not advance the epoch");
        assert_eq!(
            cs.shard(3).unwrap().num_objects(),
            0,
            "every destination copy must be evicted"
        );
        assert_bit_exact(&mut cs, 30, &versions);
        assert_single_homed(&cs);
    }

    #[test]
    fn units_on_a_downed_source_are_skipped_and_recover_honestly() {
        let mut cs = cluster(&[0, 1, 2]);
        seed(&mut cs, 40);
        // Plan the handover while everyone is up, then lose shard 2: its
        // outbound units are skipped, stay directory-owned by it, and
        // read as honest unavailability until it returns.
        cs.begin_handover(&[0, 1]).unwrap();
        cs.fail_shard(2);
        while cs.transfer_next().unwrap().is_some() {}
        assert!(
            cs.stats().transfer_skips > 0,
            "downed source must be skipped"
        );
        cs.commit_handover().unwrap();
        assert_eq!(cs.epoch(), 2);

        let mut down = 0;
        for i in 0..40 {
            match cs.retrieve(&key(i), SelectionPolicy::FirstK, 2) {
                Ok(read) => {
                    let len = if i % 6 == 5 { 9_000 } else { 600 };
                    assert_eq!(read.bytes, payload(i, 0, len));
                }
                Err(ClusterError::ShardDown(2)) => down += 1,
                Err(e) => panic!("{}: unexpected {e}", key(i)),
            }
        }
        assert!(down > 0, "shard 2 owned something");

        cs.recover_shard(2);
        assert_bit_exact(&mut cs, 40, &HashMap::new());
    }

    #[test]
    fn handover_telemetry_lands_in_the_registry() {
        let registry = Registry::new();
        let mut cs = cluster(&[0, 1, 2]);
        cs.attach_registry(&registry);
        seed(&mut cs, 24);
        cs.begin_handover(&[0, 1, 2, 3]).unwrap();
        while cs.transfer_next().unwrap().is_some() {}
        cs.commit_handover().unwrap();
        assert_eq!(registry.gauge_value("cluster.epoch"), 2);
        assert_eq!(registry.gauge_value("cluster.shards"), 4);
        assert!(registry.gauge_value("cluster.groups_moved") > 0);
        let spans = registry.spans();
        assert!(spans.iter().any(|s| s.name == "cluster.handover.begin"));
        assert!(spans.iter().any(|s| s.name == "cluster.handover.transfer"));
        assert!(spans.iter().any(|s| s.name == "cluster.handover.commit"));
    }
}
