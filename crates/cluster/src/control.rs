//! The cluster control plane: token-ring membership + leader election.
//!
//! This is where the so-far-freestanding `rain-membership` and
//! `rain-election` crates meet the storage path. One membership node and
//! one election state machine run per shard (shard `i` is control node
//! `i`); the membership protocol circulates its token over the simulated
//! fabric and converges every live node on a common view, the election
//! protocol designates the smallest live shard id as **leader**, and only
//! the leader may commit a view change — the data plane
//! ([`crate::ClusterStore`]) never acts on a membership event until the
//! leader has watched the token ring converge on it.
//!
//! The election machines are driven on the membership simulation's clock
//! (announcements are exchanged between live nodes at every [`ControlPlane::tick`]),
//! so one seed determines the entire control-plane history: token passes,
//! exclusions, 911 regenerations, leadership hand-offs.

use rain_election::{ElectionConfig, ElectionNode};
use rain_membership::{MemberConfig, MembershipCluster};
use rain_obs::Registry;
use rain_sim::{NodeId, SimDuration};

use crate::ring::ShardId;

/// The control plane for a sharded cluster of up to `total` shards.
pub struct ControlPlane {
    membership: MembershipCluster,
    electors: Vec<ElectionNode>,
    /// Whether each shard currently participates (joined and not crashed).
    active: Vec<bool>,
    /// The member set of the last committed view, sorted.
    committed: Vec<ShardId>,
}

impl ControlPlane {
    /// A control plane over `total` shards, the first `initial` of which
    /// participate from the start. Everything derives from `seed`.
    pub fn new(
        total: usize,
        initial: usize,
        member_config: MemberConfig,
        election_config: ElectionConfig,
        seed: u64,
    ) -> Self {
        let membership = MembershipCluster::new(total, initial, member_config, seed);
        let electors = (0..total)
            .map(|i| ElectionNode::new(NodeId(i), election_config))
            .collect();
        ControlPlane {
            membership,
            electors,
            active: (0..total).map(|i| i < initial).collect(),
            committed: (0..initial).collect(),
        }
    }

    /// Run both protocols for `step` of simulated time: the membership
    /// token circulates over the fabric, then every active node exchanges
    /// election announcements (in shard-id order, so the run is
    /// deterministic).
    pub fn tick(&mut self, step: SimDuration) {
        self.membership.run_for(step);
        let now = self.membership.now();
        for i in 0..self.electors.len() {
            if !self.active[i] {
                continue;
            }
            if let Some(announce) = self.electors[i].on_tick(now) {
                for (j, elector) in self.electors.iter_mut().enumerate() {
                    if j != i && self.active[j] {
                        elector.on_announce(now, announce);
                    }
                }
            }
        }
    }

    /// The unique live leader, if the active shards currently agree on one.
    pub fn leader(&self) -> Option<ShardId> {
        let mut leader = None;
        for (i, elector) in self.electors.iter().enumerate() {
            if !self.active[i] {
                continue;
            }
            match leader {
                None => leader = Some(elector.leader()),
                Some(l) if elector.leader() == l => {}
                Some(_) => return None,
            }
        }
        let l = leader?;
        self.active
            .get(l.0)
            .copied()
            .unwrap_or(false)
            .then_some(l.0)
    }

    /// The view change the leader is ready to commit: the leader's
    /// membership view, once every live token-ring participant has
    /// converged on it and it differs from the committed member set.
    /// `None` while there is no stable leader, the ring is still churning,
    /// or nothing changed.
    pub fn poll_transition(&self) -> Option<Vec<ShardId>> {
        let leader = self.leader()?;
        let mut view: Vec<NodeId> = self.membership.node(NodeId(leader)).view().to_vec();
        if view.is_empty() {
            return None;
        }
        view.sort_by_key(|n| n.0);
        if !self.membership.converged_on(&view) {
            return None;
        }
        let members: Vec<ShardId> = view.iter().map(|n| n.0).collect();
        (members != self.committed).then_some(members)
    }

    /// Record that the data plane committed a view over `members` — further
    /// [`ControlPlane::poll_transition`] calls report only *new* changes.
    pub fn mark_committed(&mut self, members: &[ShardId]) {
        self.committed = members.to_vec();
        self.committed.sort_unstable();
    }

    /// The member set of the last committed view, sorted.
    pub fn committed(&self) -> &[ShardId] {
        &self.committed
    }

    /// Crash shard `s`: its membership node goes down with its fabric node
    /// and its elector falls silent (peers drop it one failure-timeout
    /// later).
    pub fn crash(&mut self, s: ShardId) {
        self.membership.crash(NodeId(s));
        self.active[s] = false;
    }

    /// Recover a crashed shard; it rejoins the token ring via the 911
    /// mechanism and resumes announcing.
    pub fn recover(&mut self, s: ShardId) {
        self.membership.recover(NodeId(s));
        self.active[s] = true;
    }

    /// Have a shard outside the initial membership join via `contact`.
    pub fn join(&mut self, s: ShardId, contact: ShardId) {
        self.membership.join(NodeId(s), NodeId(contact));
        self.active[s] = true;
    }

    /// Total token regenerations across the cluster's history.
    pub fn regenerations(&self) -> u64 {
        self.membership.regenerations().len() as u64
    }

    /// Total tokens received, summed over all shards.
    pub fn tokens_received(&self) -> u64 {
        (0..self.active.len())
            .map(|i| self.membership.node(NodeId(i)).tokens_received())
            .sum()
    }

    /// Total leadership changes, summed over all shards' election state.
    pub fn leader_changes(&self) -> u64 {
        self.electors.iter().map(|e| e.leader_changes()).sum()
    }

    /// Publish the control-plane health gauges into `registry`:
    /// `membership.regenerations`, `membership.tokens_received`, and
    /// `election.leader_changes` — the churn signals a `ClusterStore`
    /// operator watches without poking node internals.
    pub fn publish_gauges(&self, registry: &Registry) {
        registry
            .gauge("membership.regenerations")
            .set(self.regenerations() as i64);
        registry
            .gauge("membership.tokens_received")
            .set(self.tokens_received() as i64);
        registry
            .gauge("election.leader_changes")
            .set(self.leader_changes() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(total: usize, initial: usize) -> ControlPlane {
        ControlPlane::new(
            total,
            initial,
            MemberConfig::default(),
            ElectionConfig::default(),
            42,
        )
    }

    fn settle(cp: &mut ControlPlane, secs: u64) {
        for _ in 0..secs * 10 {
            cp.tick(SimDuration::from_millis(100));
        }
    }

    #[test]
    fn a_healthy_plane_elects_the_smallest_shard_and_reports_no_transition() {
        let mut cp = plane(4, 4);
        settle(&mut cp, 3);
        assert_eq!(cp.leader(), Some(0));
        assert_eq!(cp.poll_transition(), None, "nothing changed");
        let reg = Registry::new();
        cp.publish_gauges(&reg);
        assert!(reg.gauge_value("membership.tokens_received") > 0);
        assert_eq!(reg.gauge_value("membership.regenerations"), 0);
    }

    #[test]
    fn a_join_surfaces_as_a_leader_committed_transition() {
        let mut cp = plane(4, 3);
        settle(&mut cp, 3);
        assert_eq!(cp.poll_transition(), None);
        cp.join(3, 1);
        settle(&mut cp, 6);
        let view = cp.poll_transition().expect("join must surface");
        assert_eq!(view, vec![0, 1, 2, 3]);
        cp.mark_committed(&view);
        assert_eq!(cp.poll_transition(), None, "committed views stop reporting");
    }

    #[test]
    fn killing_the_leader_re_elects_and_excludes_it_from_the_view() {
        let mut cp = plane(4, 4);
        settle(&mut cp, 3);
        assert_eq!(cp.leader(), Some(0));
        cp.crash(0);
        settle(&mut cp, 20);
        assert_eq!(cp.leader(), Some(1), "next-smallest live shard leads");
        let view = cp.poll_transition().expect("exclusion must surface");
        assert_eq!(view, vec![1, 2, 3]);
    }

    #[test]
    fn control_histories_replay_bit_identically() {
        let run = || {
            let mut cp = plane(5, 4);
            settle(&mut cp, 2);
            cp.join(4, 0);
            settle(&mut cp, 4);
            cp.crash(2);
            settle(&mut cp, 12);
            (
                cp.leader(),
                cp.poll_transition(),
                cp.regenerations(),
                cp.tokens_received(),
                cp.leader_changes(),
            )
        };
        assert_eq!(run(), run());
    }
}
