//! Sharded multi-coordinator clustering for the RAIN store.
//!
//! Everything below the cluster layer — erasure coding, the node fabric,
//! grouped small-object storage, the WAL, repair — runs inside a single
//! [`rain_storage::DistributedStore`] coordinator. This crate removes that
//! last single point of coordination:
//!
//! * [`ring`] — a consistent-hash ring with virtual nodes (total, stable,
//!   minimal-movement, balanced);
//! * [`view`] — epoch-numbered [`MembershipView`]s derived from the ring;
//! * [`control`] — the [`ControlPlane`]: `rain-membership`'s token ring
//!   detects joins/crashes, `rain-election` picks the leader that alone may
//!   commit a view change;
//! * [`metalog`] — the cluster [`MetaLog`]: directory, committed view,
//!   and handover state as checksummed write-ahead records, so
//!   [`ClusterStore::recover_from_disk`] can rebuild the whole cluster
//!   after a power loss;
//! * [`store`] — the [`ClusterStore`] data plane: epoch-stamped routing
//!   over many coordinators, with two-phase **group-granularity**
//!   rebalancing (a sealed coding group moves as one unit for one symbol
//!   per node, regardless of how many objects it packs);
//! * [`scenario`] — deterministic churn scenarios driving both planes
//!   through join → rebalance → leader kill → re-election → mid-handover
//!   crash, checking every acked object at every epoch.
//!
//! The whole stack stays simulation-first: one seed determines token
//! passes, elections, transfers, and telemetry, so any run replays
//! bit-identically.

#![warn(missing_docs)]

pub mod control;
pub mod metalog;
pub mod ring;
pub mod scenario;
pub mod store;
pub mod view;

pub use control::ControlPlane;
pub use metalog::{MetaLog, MetaRecord, MetaReplay, MetaState, MetaUnit, PendingHandover};
pub use ring::{fnv1a, HashRing, ShardId};
pub use scenario::{
    builtin_churn_specs, run_churn_scenario, run_churn_scenario_observed, ChurnReport, ChurnSpec,
};
pub use store::{
    ClusterError, ClusterRead, ClusterRecoveryReport, ClusterStats, ClusterStore, ClusterSurvivors,
};
pub use view::MembershipView;
