//! The cluster **metalog**: cluster-level control state as a write-ahead
//! log of checksummed records.
//!
//! PR 8 left the cluster's routing brain — the key directory, the committed
//! [`MembershipView`], handover dual overrides, and per-shard placement
//! keys — as plain in-memory maps, so a full cluster restart could replay
//! every per-shard WAL and still not know *where anything lives*. The
//! metalog closes that gap with the same machinery the shard stores use:
//! each record is framed by [`rain_storage::write_frame`] (length +
//! header/payload CRCs) on any [`LogBackend`], so a torn tail at the end of
//! the file is tolerated and cut, while damage anywhere else is an honest
//! [`WalError::Corrupt`].
//!
//! ## Record ordering discipline
//!
//! Every record is appended **before** the in-memory mutation it describes
//! (log-then-apply), with two deliberate exceptions that make replay safe
//! without cross-log transactions:
//!
//! * [`MetaRecord::DirPut`] is logged *after* the owning shard's store
//!   succeeded (the shard WAL already protects the bytes) and *before* the
//!   directory is updated. A crash between the two leaves a durable object
//!   with no directory entry; recovery **adopts** it back.
//! * [`MetaRecord::DirDel`] is logged *after* the shard-level delete
//!   succeeded. Logging it first would let a crash resurrect the key: the
//!   directory would forget the object while the shard still serves it.
//!
//! A handover writes [`MetaRecord::HandoverPrepare`] before any transfer,
//! [`MetaRecord::UnitLanded`] after each import is shard-durable, and a
//! single [`MetaRecord::ViewCommit`] before the cutover mutations — replay
//! redoes the cutover deterministically from the reconstructed handover
//! state, and a prepare with no matching commit rolls back exactly like
//! [`crate::ClusterStore::abort_handover`].
//!
//! [`MetaRecord::Checkpoint`] snapshots the whole control state; retention
//! is two checkpoints deep, mirroring the shard stores: the prefix before
//! the *previous* checkpoint is dropped, so a torn newest checkpoint falls
//! back to a complete older one.

use std::collections::BTreeMap;

use rain_storage::{scan_frames, write_frame, GroupId, LogBackend, WalError};

use crate::ring::ShardId;
use crate::view::MembershipView;

/// What one transferred placement unit was (mirrors the cluster store's
/// private `UnitKind`, plus the id the destination assigned to a group).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaUnit {
    /// A sealed coding group: its id at the source and at the destination.
    Group {
        /// The group's id at the source shard.
        gid: GroupId,
        /// The id the destination shard assigned on import.
        new_gid: GroupId,
    },
    /// An individually placed object.
    Whole {
        /// The object's key.
        name: String,
    },
}

/// One cluster-control mutation, as logged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaRecord {
    /// A membership view became committed (genesis included): the epoch,
    /// the member set, and the ring's vnode count — everything needed to
    /// rebuild the ring deterministically via [`MembershipView::restore`].
    /// Logged **before** the cutover mutations it authorises.
    ViewCommit {
        /// The committed epoch.
        epoch: u64,
        /// The committed member shards, sorted.
        members: Vec<ShardId>,
        /// Ring points per shard.
        vnodes: usize,
    },
    /// `key` is (about to be) directory-owned by `shard`. Logged after the
    /// shard-level store succeeded.
    DirPut {
        /// The object key.
        key: String,
        /// Its authoritative owner.
        shard: ShardId,
    },
    /// `key` was deleted everywhere. Logged after the shard-level delete
    /// succeeded, before the directory forgets the key.
    DirDel {
        /// The deleted key.
        key: String,
    },
    /// Group `gid` on `shard` routes by placement key `pkey`.
    PkeyAssign {
        /// The shard holding the group.
        shard: ShardId,
        /// The group id at that shard.
        gid: GroupId,
        /// The placement key the ring routes the group by.
        pkey: String,
    },
    /// A two-phase handover toward a view over `members` began. Everything
    /// after this record and before the matching [`MetaRecord::ViewCommit`]
    /// / [`MetaRecord::HandoverAbort`] is transition state.
    HandoverPrepare {
        /// The target member set.
        members: Vec<ShardId>,
    },
    /// One planned unit transfer landed: the unit now also exists at `to`
    /// (shard-durable there), carrying `members` object keys.
    UnitLanded {
        /// The exporting shard.
        from: ShardId,
        /// The importing shard.
        to: ShardId,
        /// What moved.
        unit: MetaUnit,
        /// The object keys riding in the unit.
        members: Vec<String>,
    },
    /// `key` was dual-written during the transition and must collapse onto
    /// `shard` at commit (the freshest copy's home).
    DualOverride {
        /// The overwritten key.
        key: String,
        /// The shard whose copy wins at commit.
        shard: ShardId,
    },
    /// The in-flight handover was abandoned; the committed view stays
    /// authoritative. Also appended by recovery itself when it finds a
    /// prepare with no commit.
    HandoverAbort,
    /// A full snapshot of the committed control state. Replay restarts
    /// from the newest complete checkpoint; older records become dead
    /// weight and are dropped (two-checkpoint retention).
    Checkpoint {
        /// The committed epoch.
        epoch: u64,
        /// The committed member shards, sorted.
        members: Vec<ShardId>,
        /// Ring points per shard.
        vnodes: usize,
        /// Every directory entry, sorted by key.
        directory: Vec<(String, ShardId)>,
        /// Every placement-key assignment, sorted by (shard, gid).
        pkeys: Vec<(ShardId, GroupId, String)>,
    },
}

const TAG_VIEW_COMMIT: u8 = 1;
const TAG_DIR_PUT: u8 = 2;
const TAG_DIR_DEL: u8 = 3;
const TAG_PKEY_ASSIGN: u8 = 4;
const TAG_HANDOVER_PREPARE: u8 = 5;
const TAG_UNIT_LANDED: u8 = 6;
const TAG_DUAL_OVERRIDE: u8 = 7;
const TAG_HANDOVER_ABORT: u8 = 8;
const TAG_CHECKPOINT: u8 = 9;

const UNIT_GROUP: u8 = 0;
const UNIT_WHOLE: u8 = 1;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_shards(out: &mut Vec<u8>, shards: &[ShardId]) {
    out.extend_from_slice(&(shards.len() as u32).to_le_bytes());
    for &s in shards {
        out.extend_from_slice(&(s as u64).to_le_bytes());
    }
}

/// Sequential reader over a record payload; every getter returns `None` on
/// underrun so a damaged payload surfaces as a decode failure, never a
/// panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    fn shard(&mut self) -> Option<ShardId> {
        usize::try_from(self.u64()?).ok()
    }

    fn shards(&mut self) -> Option<Vec<ShardId>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(self.shard()?);
        }
        Some(out)
    }

    fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

impl MetaRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            MetaRecord::ViewCommit {
                epoch,
                members,
                vnodes,
            } => {
                out.push(TAG_VIEW_COMMIT);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&(*vnodes as u64).to_le_bytes());
                put_shards(out, members);
            }
            MetaRecord::DirPut { key, shard } => {
                out.push(TAG_DIR_PUT);
                out.extend_from_slice(&(*shard as u64).to_le_bytes());
                put_str(out, key);
            }
            MetaRecord::DirDel { key } => {
                out.push(TAG_DIR_DEL);
                put_str(out, key);
            }
            MetaRecord::PkeyAssign { shard, gid, pkey } => {
                out.push(TAG_PKEY_ASSIGN);
                out.extend_from_slice(&(*shard as u64).to_le_bytes());
                out.extend_from_slice(&gid.to_le_bytes());
                put_str(out, pkey);
            }
            MetaRecord::HandoverPrepare { members } => {
                out.push(TAG_HANDOVER_PREPARE);
                put_shards(out, members);
            }
            MetaRecord::UnitLanded {
                from,
                to,
                unit,
                members,
            } => {
                out.push(TAG_UNIT_LANDED);
                out.extend_from_slice(&(*from as u64).to_le_bytes());
                out.extend_from_slice(&(*to as u64).to_le_bytes());
                match unit {
                    MetaUnit::Group { gid, new_gid } => {
                        out.push(UNIT_GROUP);
                        out.extend_from_slice(&gid.to_le_bytes());
                        out.extend_from_slice(&new_gid.to_le_bytes());
                    }
                    MetaUnit::Whole { name } => {
                        out.push(UNIT_WHOLE);
                        put_str(out, name);
                    }
                }
                out.extend_from_slice(&(members.len() as u32).to_le_bytes());
                for m in members {
                    put_str(out, m);
                }
            }
            MetaRecord::DualOverride { key, shard } => {
                out.push(TAG_DUAL_OVERRIDE);
                out.extend_from_slice(&(*shard as u64).to_le_bytes());
                put_str(out, key);
            }
            MetaRecord::HandoverAbort => out.push(TAG_HANDOVER_ABORT),
            MetaRecord::Checkpoint {
                epoch,
                members,
                vnodes,
                directory,
                pkeys,
            } => {
                out.push(TAG_CHECKPOINT);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&(*vnodes as u64).to_le_bytes());
                put_shards(out, members);
                out.extend_from_slice(&(directory.len() as u32).to_le_bytes());
                for (key, shard) in directory {
                    out.extend_from_slice(&(*shard as u64).to_le_bytes());
                    put_str(out, key);
                }
                out.extend_from_slice(&(pkeys.len() as u32).to_le_bytes());
                for (shard, gid, pkey) in pkeys {
                    out.extend_from_slice(&(*shard as u64).to_le_bytes());
                    out.extend_from_slice(&gid.to_le_bytes());
                    put_str(out, pkey);
                }
            }
        }
    }

    fn decode(payload: &[u8]) -> Option<MetaRecord> {
        let mut c = Cursor {
            buf: payload,
            pos: 0,
        };
        let record = match c.u8()? {
            TAG_VIEW_COMMIT => {
                let epoch = c.u64()?;
                let vnodes = usize::try_from(c.u64()?).ok()?;
                let members = c.shards()?;
                MetaRecord::ViewCommit {
                    epoch,
                    members,
                    vnodes,
                }
            }
            TAG_DIR_PUT => MetaRecord::DirPut {
                shard: c.shard()?,
                key: c.str()?,
            },
            TAG_DIR_DEL => MetaRecord::DirDel { key: c.str()? },
            TAG_PKEY_ASSIGN => MetaRecord::PkeyAssign {
                shard: c.shard()?,
                gid: c.u64()?,
                pkey: c.str()?,
            },
            TAG_HANDOVER_PREPARE => MetaRecord::HandoverPrepare {
                members: c.shards()?,
            },
            TAG_UNIT_LANDED => {
                let from = c.shard()?;
                let to = c.shard()?;
                let unit = match c.u8()? {
                    UNIT_GROUP => MetaUnit::Group {
                        gid: c.u64()?,
                        new_gid: c.u64()?,
                    },
                    UNIT_WHOLE => MetaUnit::Whole { name: c.str()? },
                    _ => return None,
                };
                let n = c.u32()? as usize;
                let mut members = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    members.push(c.str()?);
                }
                MetaRecord::UnitLanded {
                    from,
                    to,
                    unit,
                    members,
                }
            }
            TAG_DUAL_OVERRIDE => MetaRecord::DualOverride {
                shard: c.shard()?,
                key: c.str()?,
            },
            TAG_HANDOVER_ABORT => MetaRecord::HandoverAbort,
            TAG_CHECKPOINT => {
                let epoch = c.u64()?;
                let vnodes = usize::try_from(c.u64()?).ok()?;
                let members = c.shards()?;
                let n = c.u32()? as usize;
                let mut directory = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let shard = c.shard()?;
                    directory.push((c.str()?, shard));
                }
                let n = c.u32()? as usize;
                let mut pkeys = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let shard = c.shard()?;
                    let gid = c.u64()?;
                    pkeys.push((shard, gid, c.str()?));
                }
                MetaRecord::Checkpoint {
                    epoch,
                    members,
                    vnodes,
                    directory,
                    pkeys,
                }
            }
            _ => return None,
        };
        c.finished().then_some(record)
    }
}

/// What [`MetaLog::replay`] found on disk.
#[derive(Debug)]
pub struct MetaReplay {
    /// The decoded records, in log order, with their byte offsets.
    pub records: Vec<(usize, MetaRecord)>,
    /// True if the log ended in a partial frame (cut before reuse).
    pub torn_tail: bool,
    /// Bytes consumed by the complete frames.
    pub bytes_replayed: usize,
}

/// The cluster's control-state write-ahead log.
///
/// Thin framing/codec layer over any [`LogBackend`] — typically a
/// [`rain_storage::FileLog`] (single-file or segmented) under a real
/// cluster, a [`rain_storage::MemLog`] in tests.
#[derive(Debug)]
pub struct MetaLog {
    backend: Box<dyn LogBackend>,
    frame: Vec<u8>,
    /// Records appended through this handle.
    appended: u64,
    /// Records appended since the newest checkpoint record.
    since_ckpt: u64,
    /// Byte offset of the newest checkpoint; the *next* checkpoint drops
    /// the prefix before this one (two-checkpoint retention).
    ckpt_offset: Option<u64>,
    /// The log's current logical length — tracked so appends never have to
    /// re-read the backend. [`MetaLog::replay`] resynchronises it.
    len: u64,
}

impl MetaLog {
    /// Wrap a backend. The log's existing contents are left untouched;
    /// replay them first when restarting (see [`MetaLog::replay`]).
    pub fn new(backend: Box<dyn LogBackend>) -> Self {
        MetaLog {
            backend,
            frame: Vec::new(),
            appended: 0,
            since_ckpt: 0,
            ckpt_offset: None,
            len: 0,
        }
    }

    /// Append one record (framed, checksummed). Durability follows the
    /// backend's fsync policy, exactly as shard WAL appends do.
    pub fn append(&mut self, record: &MetaRecord) -> Result<(), WalError> {
        self.frame.clear();
        let mut payload = Vec::new();
        record.encode(&mut payload);
        let offset = self.len;
        write_frame(&mut self.frame, &payload);
        self.backend.append(&self.frame)?;
        self.len += self.frame.len() as u64;
        self.appended += 1;
        if matches!(record, MetaRecord::Checkpoint { .. }) {
            let prev = self.ckpt_offset.replace(offset);
            self.since_ckpt = 0;
            if let Some(prev) = prev {
                // Two-checkpoint retention: everything before the
                // *previous* checkpoint is dead weight. O(1) whole-segment
                // deletion on a segmented backend.
                self.backend.drop_prefix(prev as usize)?;
                self.len -= prev;
                if let Some(off) = &mut self.ckpt_offset {
                    *off -= prev;
                }
            }
        } else {
            self.since_ckpt += 1;
        }
        Ok(())
    }

    /// Force pending appends durable (group commit).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.backend.sync()
    }

    /// Advance the backend's virtual clock (interval fsync policies).
    pub fn advance_clock(&mut self, by: rain_sim::SimDuration) -> Result<(), WalError> {
        self.backend.advance_clock(by)
    }

    /// Records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Records appended since the newest checkpoint.
    pub fn since_checkpoint(&self) -> u64 {
        self.since_ckpt
    }

    /// Decode every complete frame, tolerating a torn final frame only,
    /// and cut the torn tail so post-recovery appends extend a clean log.
    /// A checksum-valid frame that does not decode is corruption, not a
    /// torn tail.
    pub fn replay(&mut self) -> Result<MetaReplay, WalError> {
        let buf = self.backend.contents()?;
        let scan = scan_frames(&buf)?;
        let mut records = Vec::with_capacity(scan.frames.len());
        for (offset, payload) in &scan.frames {
            let record = MetaRecord::decode(&buf[payload.clone()])
                .ok_or(WalError::Corrupt { offset: *offset })?;
            if matches!(record, MetaRecord::Checkpoint { .. }) {
                self.ckpt_offset = Some(*offset as u64);
            }
            records.push((*offset, record));
        }
        if scan.torn_tail {
            self.backend.truncate(scan.bytes_scanned)?;
        }
        self.len = scan.bytes_scanned as u64;
        Ok(MetaReplay {
            records,
            torn_tail: scan.torn_tail,
            bytes_replayed: scan.bytes_scanned,
        })
    }
}

/// The committed control state a metalog replay reconstructs, plus the
/// transition state of a handover that was in flight at the crash.
#[derive(Debug, Default)]
pub struct MetaState {
    /// The committed view, if any `ViewCommit`/`Checkpoint` was found.
    pub view: Option<MembershipView>,
    /// The authoritative key directory.
    pub directory: BTreeMap<String, ShardId>,
    /// Placement keys per (shard, group).
    pub pkeys: BTreeMap<(ShardId, GroupId), String>,
    /// A prepare-logged handover with no matching commit/abort: its target
    /// member set, landed units, and dual overrides. Recovery rolls it
    /// back.
    pub pending: Option<PendingHandover>,
}

/// Transition state reconstructed from records between a
/// `HandoverPrepare` and its (missing) commit.
#[derive(Debug, Default)]
pub struct PendingHandover {
    /// The target member set.
    pub members: Vec<ShardId>,
    /// Landed transfers: (from, to, unit, member keys).
    pub landed: Vec<(ShardId, ShardId, MetaUnit, Vec<String>)>,
    /// Dual overrides accumulated during the transition.
    pub dual: BTreeMap<String, ShardId>,
}

impl MetaState {
    /// Fold a replayed record stream into the control state it describes.
    /// `ViewCommit` *applies* the pending handover's cutover (directory
    /// repoints, dual collapse, pkey cleanup) exactly as
    /// [`crate::ClusterStore::commit_handover`] would have — a crash after
    /// the commit record but before the in-memory mutations redoes them
    /// deterministically.
    pub fn fold(records: &[(usize, MetaRecord)]) -> MetaState {
        let mut st = MetaState::default();
        for (_, record) in records {
            match record {
                MetaRecord::Checkpoint {
                    epoch,
                    members,
                    vnodes,
                    directory,
                    pkeys,
                } => {
                    st = MetaState::default();
                    st.view = Some(MembershipView::restore(*epoch, members, *vnodes));
                    st.directory = directory.iter().cloned().collect();
                    st.pkeys = pkeys
                        .iter()
                        .map(|(s, g, p)| ((*s, *g), p.clone()))
                        .collect();
                }
                MetaRecord::ViewCommit {
                    epoch,
                    members,
                    vnodes,
                } => {
                    let committed = MembershipView::restore(*epoch, members, *vnodes);
                    if let Some(pending) = st.pending.take() {
                        st.apply_cutover(&pending);
                    }
                    st.view = Some(committed);
                }
                MetaRecord::DirPut { key, shard } => {
                    st.directory.insert(key.clone(), *shard);
                }
                MetaRecord::DirDel { key } => {
                    st.directory.remove(key);
                    if let Some(p) = &mut st.pending {
                        p.dual.remove(key);
                    }
                }
                MetaRecord::PkeyAssign { shard, gid, pkey } => {
                    st.pkeys.insert((*shard, *gid), pkey.clone());
                }
                MetaRecord::HandoverPrepare { members } => {
                    st.pending = Some(PendingHandover {
                        members: members.clone(),
                        ..PendingHandover::default()
                    });
                }
                MetaRecord::UnitLanded {
                    from,
                    to,
                    unit,
                    members,
                } => {
                    if let Some(p) = &mut st.pending {
                        p.landed.push((*from, *to, unit.clone(), members.clone()));
                    }
                }
                MetaRecord::DualOverride { key, shard } => {
                    if let Some(p) = &mut st.pending {
                        p.dual.insert(key.clone(), *shard);
                    }
                }
                MetaRecord::HandoverAbort => {
                    // Rollback needs no directory change: the committed
                    // view stayed authoritative, and the stray copies the
                    // transition created are swept at the shard level.
                    if let Some(p) = st.pending.take() {
                        for (_, to, unit, _) in &p.landed {
                            if let MetaUnit::Group { new_gid, .. } = unit {
                                st.pkeys.remove(&(*to, *new_gid));
                            }
                        }
                    }
                }
            }
        }
        st
    }

    /// Redo the cutover a `ViewCommit` record authorised: landed units'
    /// member keys repoint from source to destination, dual-written keys
    /// collapse onto their override shard, and the source side's pkeys are
    /// dropped.
    fn apply_cutover(&mut self, pending: &PendingHandover) {
        for (from, to, unit, members) in &pending.landed {
            for m in members {
                if self.directory.get(m) == Some(from) {
                    self.directory.insert(m.clone(), *to);
                }
            }
            if let MetaUnit::Group { gid, .. } = unit {
                self.pkeys.remove(&(*from, *gid));
            }
        }
        for (key, t) in &pending.dual {
            if self.directory.contains_key(key) {
                self.directory.insert(key.clone(), *t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rain_storage::MemLog;

    fn sample_records() -> Vec<MetaRecord> {
        vec![
            MetaRecord::ViewCommit {
                epoch: 1,
                members: vec![0, 1, 2],
                vnodes: 8,
            },
            MetaRecord::DirPut {
                key: "obj-1".into(),
                shard: 2,
            },
            MetaRecord::PkeyAssign {
                shard: 2,
                gid: 7,
                pkey: "unit/2/7#3".into(),
            },
            MetaRecord::HandoverPrepare {
                members: vec![0, 1, 2, 3],
            },
            MetaRecord::UnitLanded {
                from: 2,
                to: 3,
                unit: MetaUnit::Group { gid: 7, new_gid: 0 },
                members: vec!["obj-1".into()],
            },
            MetaRecord::DualOverride {
                key: "obj-1".into(),
                shard: 3,
            },
            MetaRecord::HandoverAbort,
            MetaRecord::DirDel {
                key: "obj-1".into(),
            },
            MetaRecord::Checkpoint {
                epoch: 4,
                members: vec![1, 2],
                vnodes: 8,
                directory: vec![("a".into(), 1), ("b".into(), 2)],
                pkeys: vec![(1, 3, "unit/1/3#0".into())],
            },
        ]
    }

    #[test]
    fn every_record_round_trips_through_the_codec() {
        for record in sample_records() {
            let mut payload = Vec::new();
            record.encode(&mut payload);
            assert_eq!(MetaRecord::decode(&payload), Some(record));
        }
    }

    #[test]
    fn replay_returns_what_was_appended_and_cuts_a_torn_tail() {
        let mut log = MetaLog::new(Box::new(MemLog::new()));
        for record in sample_records() {
            log.append(&record).unwrap();
        }
        let replay = log.replay().unwrap();
        assert!(!replay.torn_tail);
        let got: Vec<MetaRecord> = replay.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(got, sample_records());
    }

    #[test]
    fn fold_applies_commit_and_rolls_back_unfinished_handovers() {
        let records: Vec<(usize, MetaRecord)> = vec![
            MetaRecord::ViewCommit {
                epoch: 1,
                members: vec![0, 1],
                vnodes: 8,
            },
            MetaRecord::DirPut {
                key: "k".into(),
                shard: 0,
            },
            MetaRecord::HandoverPrepare {
                members: vec![0, 1, 2],
            },
            MetaRecord::UnitLanded {
                from: 0,
                to: 2,
                unit: MetaUnit::Whole { name: "k".into() },
                members: vec!["k".into()],
            },
            MetaRecord::ViewCommit {
                epoch: 2,
                members: vec![0, 1, 2],
                vnodes: 8,
            },
        ]
        .into_iter()
        .enumerate()
        .collect();
        let st = MetaState::fold(&records);
        assert_eq!(st.view.as_ref().unwrap().epoch(), 2);
        assert_eq!(st.directory.get("k"), Some(&2), "commit repoints");
        assert!(st.pending.is_none());

        // Same prefix, but the commit never made it to the log: the landed
        // unit must be reported as pending so recovery rolls it back.
        let st = MetaState::fold(&records[..4]);
        assert_eq!(st.view.as_ref().unwrap().epoch(), 1);
        assert_eq!(st.directory.get("k"), Some(&0), "no repoint without commit");
        let pending = st.pending.expect("prepare without commit is pending");
        assert_eq!(pending.landed.len(), 1);
    }

    #[test]
    fn a_checkpoint_resets_state_and_drops_the_stale_prefix() {
        let mut log = MetaLog::new(Box::new(MemLog::new()));
        log.append(&MetaRecord::ViewCommit {
            epoch: 1,
            members: vec![0],
            vnodes: 4,
        })
        .unwrap();
        for i in 0..10 {
            log.append(&MetaRecord::DirPut {
                key: format!("k{i}"),
                shard: 0,
            })
            .unwrap();
        }
        let ckpt = MetaRecord::Checkpoint {
            epoch: 1,
            members: vec![0],
            vnodes: 4,
            directory: (0..10).map(|i| (format!("k{i}"), 0)).collect(),
            pkeys: vec![],
        };
        log.append(&ckpt).unwrap();
        log.append(&ckpt).unwrap();
        // The prefix before the first checkpoint is gone; replay starts at
        // a checkpoint and still reconstructs every key.
        let replay = log.replay().unwrap();
        assert!(
            matches!(replay.records[0].1, MetaRecord::Checkpoint { .. }),
            "pre-checkpoint records must have been dropped"
        );
        let st = MetaState::fold(&replay.records);
        assert_eq!(st.directory.len(), 10);
        assert_eq!(st.view.unwrap().epoch(), 1);
    }
}
