//! Consistent-hash ring with virtual nodes.
//!
//! Each shard projects `vnodes` points onto a 64-bit hash circle; a key is
//! owned by the shard whose point follows the key's hash (wrapping at the
//! top). The classic properties the cluster layer leans on:
//!
//! * **Total** — every key maps to exactly one live shard;
//! * **Stable** — the mapping is a pure function of the member set, so two
//!   replicas that agree on the view agree on every lookup;
//! * **Minimal movement** — adding a shard only *steals* keys (every moved
//!   key moves *to* the newcomer), removing one only *redistributes its
//!   own* keys; everything else stays put;
//! * **Balance** — with enough virtual nodes the shards own comparable
//!   slices of the circle.
//!
//! Hashing is FNV-1a (64-bit) with a 64-bit avalanche finalizer: tiny,
//! dependency-free, deterministic across runs and platforms — the same
//! reasons the rest of the workspace sticks to seeded arithmetic
//! generators. The finalizer matters: raw FNV-1a maps keys that differ
//! only in their last characters to hashes separated by small multiples of
//! the FNV prime (~2^40), which parks entire `obj-000..obj-NNN` namespaces
//! on a single arc of the circle.

/// Identifies one coordinator shard. Shard ids double as control-plane node
/// ids: shard `i` is driven by membership/election node `i`.
pub type ShardId = usize;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Mix the final bits so a one-byte change avalanches across the whole
/// word (the 64-bit finalizer popularized by MurmurHash3).
fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// 64-bit FNV-1a over `bytes`, avalanche-finalized for ring placement.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    fmix64(h)
}

/// A consistent-hash ring over a set of shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// `(point, shard)` pairs sorted by point; ties broken by shard id so
    /// construction order never matters.
    points: Vec<(u64, ShardId)>,
    /// The member shards, sorted and deduplicated.
    shards: Vec<ShardId>,
    /// Virtual nodes per shard.
    vnodes: usize,
}

impl HashRing {
    /// Build a ring over `shards` with `vnodes` points per shard.
    ///
    /// # Panics
    /// If `vnodes` is zero.
    pub fn new(shards: &[ShardId], vnodes: usize) -> Self {
        assert!(vnodes > 0, "a ring needs at least one point per shard");
        let mut members: Vec<ShardId> = shards.to_vec();
        members.sort_unstable();
        members.dedup();
        let mut points = Vec::with_capacity(members.len() * vnodes);
        for &s in &members {
            for v in 0..vnodes {
                points.push((fnv1a(format!("shard-{s}#vnode-{v}").as_bytes()), s));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            shards: members,
            vnodes,
        }
    }

    /// The member shards, sorted.
    pub fn shards(&self) -> &[ShardId] {
        &self.shards
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// True when the ring has no members (every lookup returns `None`).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard owning `key`: the first ring point at or after the key's
    /// hash, wrapping past the top. `None` only on an empty ring.
    pub fn lookup(&self, key: &str) -> Option<ShardId> {
        if self.points.is_empty() {
            return None;
        }
        let h = fnv1a(key.as_bytes());
        let i = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[i % self.points.len()];
        Some(shard)
    }

    /// A ring over the same vnode count with `shard` added.
    pub fn with_shard(&self, shard: ShardId) -> HashRing {
        let mut members = self.shards.clone();
        members.push(shard);
        HashRing::new(&members, self.vnodes)
    }

    /// A ring over the same vnode count with `shard` removed.
    pub fn without_shard(&self, shard: ShardId) -> HashRing {
        let members: Vec<ShardId> = self
            .shards
            .iter()
            .copied()
            .filter(|&s| s != shard)
            .collect();
        HashRing::new(&members, self.vnodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_total_and_construction_order_free() {
        let a = HashRing::new(&[3, 1, 7], 32);
        let b = HashRing::new(&[7, 3, 1, 3], 32);
        assert_eq!(a, b, "order and duplicates must not matter");
        for i in 0..200 {
            let key = format!("key-{i}");
            let owner = a.lookup(&key).unwrap();
            assert!(a.shards().contains(&owner));
            assert_eq!(a.lookup(&key), b.lookup(&key), "lookups must be stable");
        }
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new(&[], 16);
        assert!(ring.is_empty());
        assert_eq!(ring.lookup("anything"), None);
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = HashRing::new(&[5], 16);
        for i in 0..50 {
            assert_eq!(ring.lookup(&format!("k{i}")), Some(5));
        }
    }

    #[test]
    fn adding_a_shard_only_steals_keys() {
        let old = HashRing::new(&[0, 1, 2], 64);
        let new = old.with_shard(3);
        for i in 0..500 {
            let key = format!("obj-{i}");
            let before = old.lookup(&key).unwrap();
            let after = new.lookup(&key).unwrap();
            assert!(
                after == before || after == 3,
                "{key} moved {before} -> {after}, not to the newcomer"
            );
        }
    }

    #[test]
    fn removing_a_shard_only_redistributes_its_keys() {
        let old = HashRing::new(&[0, 1, 2, 3], 64);
        let new = old.without_shard(2);
        for i in 0..500 {
            let key = format!("obj-{i}");
            let before = old.lookup(&key).unwrap();
            let after = new.lookup(&key).unwrap();
            if before != 2 {
                assert_eq!(before, after, "{key} moved although its owner stayed");
            } else {
                assert_ne!(after, 2);
            }
        }
    }
}
