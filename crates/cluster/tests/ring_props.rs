//! Property tests for the consistent-hash ring: the contracts the cluster
//! layer stakes correctness on. Lookups must be total and stable, adding
//! or removing one shard must move only the minimal slice of the keyspace
//! (and only to/from the changed shard), and ownership must stay within a
//! bounded skew of fair across every cluster size the roadmap cares about.

use proptest::prelude::*;
use rain_cluster::{HashRing, ShardId};

const VNODES: usize = 128;

fn keys(salt: u64, count: usize) -> Vec<String> {
    (0..count).map(|i| format!("key-{salt}-{i}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every key maps to exactly one member shard, and asking twice gives
    /// the same answer: routing is a pure function of the member set.
    #[test]
    fn prop_lookup_is_total_and_stable(
        members in prop::collection::vec(0usize..64, 1..12),
        salt in any::<u64>(),
    ) {
        let ring = HashRing::new(&members, VNODES);
        let shards: Vec<ShardId> = ring.shards().to_vec();
        let twin = HashRing::new(&shards, VNODES);
        for key in keys(salt, 300) {
            let owner = ring.lookup(&key).expect("non-empty ring");
            prop_assert!(shards.contains(&owner), "{key} routed off-ring");
            prop_assert_eq!(ring.lookup(&key), Some(owner));
            prop_assert_eq!(twin.lookup(&key), Some(owner));
        }
    }

    /// Adding one shard steals at most about `keys / shards` of the
    /// keyspace, and every stolen key lands on the newcomer.
    #[test]
    fn prop_adding_a_shard_moves_minimally(
        members in prop::collection::vec(0usize..64, 1..12),
        newcomer in 64usize..96,
        salt in any::<u64>(),
    ) {
        let old = HashRing::new(&members, VNODES);
        let new = old.with_shard(newcomer);
        let sample = keys(salt, 600);
        let mut moved = 0usize;
        for key in &sample {
            let before = old.lookup(key).unwrap();
            let after = new.lookup(key).unwrap();
            if before != after {
                prop_assert_eq!(after, newcomer);
                moved += 1;
            }
        }
        let fair = sample.len().div_ceil(new.shards().len());
        prop_assert!(
            moved <= 2 * fair + 16,
            "moved {moved} of {} keys, fair share {fair}",
            sample.len()
        );
    }

    /// Removing one shard redistributes only that shard's keys; everything
    /// else stays put, and the victim's share was itself bounded.
    #[test]
    fn prop_removing_a_shard_moves_minimally(
        members in prop::collection::vec(0usize..64, 2..12),
        pick in any::<usize>(),
        salt in any::<u64>(),
    ) {
        let old = HashRing::new(&members, VNODES);
        prop_assume!(old.shards().len() >= 2);
        let victim = old.shards()[pick % old.shards().len()];
        let new = old.without_shard(victim);
        let sample = keys(salt, 600);
        let mut moved = 0usize;
        for key in &sample {
            let before = old.lookup(key).unwrap();
            let after = new.lookup(key).unwrap();
            if before == victim {
                prop_assert_ne!(after, victim);
                moved += 1;
            } else {
                prop_assert_eq!(before, after);
            }
        }
        let fair = sample.len().div_ceil(old.shards().len());
        prop_assert!(
            moved <= 2 * fair + 16,
            "victim owned {moved} of {} keys, fair share {fair}",
            sample.len()
        );
    }
}

/// Ownership stays within a bounded skew of fair for every cluster size
/// from 1 to 64 shards: no shard owns more than four fair shares (plus a
/// small-sample allowance), and with few shards nobody is starved.
#[test]
fn balance_is_bounded_for_every_cluster_size_up_to_64() {
    let sample = keys(7, 2048);
    for n in 1..=64usize {
        let shards: Vec<ShardId> = (0..n).collect();
        let ring = HashRing::new(&shards, VNODES);
        let mut load = vec![0usize; n];
        for key in &sample {
            load[ring.lookup(key).unwrap()] += 1;
        }
        let fair = sample.len().div_ceil(n);
        let max = *load.iter().max().unwrap();
        assert!(
            max <= 4 * fair + 8,
            "{n} shards: heaviest owns {max}, fair share {fair}"
        );
        if n <= 8 {
            let min = *load.iter().min().unwrap();
            assert!(
                min * 8 >= fair,
                "{n} shards: lightest owns {min}, fair share {fair}"
            );
        }
    }
}
