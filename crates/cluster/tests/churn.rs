//! The acceptance run for the sharded cluster: the scripted churn
//! scenario (join → rebalance → leader kill → re-election → crash during
//! handover) must keep every acked object bit-exact or honestly
//! unavailable at every epoch, move data only in sealed-group units at
//! one symbol per node each, and replay bit-identically from its seed.

use rain_cluster::scenario::{run_churn_scenario, run_churn_scenario_observed, ChurnSpec};
use rain_obs::Registry;

#[test]
fn churn_never_serves_wrong_bytes_and_never_loses_an_acked_object() {
    let report = run_churn_scenario(&ChurnSpec::default_churn());
    assert_eq!(report.wrong_bytes, 0, "wrong bytes are disqualifying");
    assert_eq!(report.missing, 0, "acked objects must never vanish");
    assert_eq!(
        report.bit_exact + report.unavailable,
        report.retrieves,
        "every sweep read must be bit-exact or an honest unavailability"
    );
    assert!(
        report.unavailable > 0,
        "the dead shard's units must go dark honestly"
    );
    assert!(report.writes_ok > 0 && report.retrieves > 0);
}

#[test]
fn churn_walks_the_whole_script() {
    let report = run_churn_scenario(&ChurnSpec::default_churn());
    assert_eq!(
        report.final_epoch, 3,
        "genesis, join commit, post-kill commit"
    );
    assert_eq!(
        report.handover_aborts, 1,
        "the mid-handover crash must abort"
    );
    assert!(report.leader_changes >= 2, "election plus re-election");
    assert!(
        report.stale_writes_rejected >= 1,
        "stale writes must bounce"
    );
    assert!(report.forwarded_reads >= 1, "stale reads must be forwarded");
    assert!(report.dual_writes >= 1, "handover writes must dual-log");
}

#[test]
fn churn_rebalances_in_sealed_group_units_at_one_symbol_per_node() {
    let report = run_churn_scenario(&ChurnSpec::default_churn());
    assert!(
        report.groups_moved >= 1,
        "groups are the unit of rebalancing"
    );
    let units = report.groups_moved + report.wholes_moved;
    // The (6, 4) B-Code shards run six storage nodes: every moved unit —
    // no matter how many objects it packs — costs exactly one symbol per
    // node, so the per-unit cost is the node count, not the object count.
    assert_eq!(report.symbols_transferred, units * 6);
    assert!((report.symbols_per_group - 6.0).abs() < f64::EPSILON);
}

#[test]
fn churn_replays_bit_identically_and_fills_the_registry() {
    let spec = ChurnSpec::default_churn();
    let reg_a = Registry::new();
    let reg_b = Registry::new();
    let a = run_churn_scenario_observed(&spec, &reg_a);
    let b = run_churn_scenario_observed(&spec, &reg_b);
    assert_eq!(a, b, "same seed, same history");
    assert_eq!(reg_a.snapshot(), reg_b.snapshot(), "same telemetry too");

    assert_eq!(reg_a.gauge_value("cluster.epoch"), 3);
    assert!(reg_a.gauge_value("cluster.groups_moved") >= 1);
    assert!(reg_a.gauge_value("membership.tokens_received") > 0);
    assert!(reg_a.gauge_value("election.leader_changes") >= 2);
    let spans = reg_a.spans();
    assert!(spans.iter().any(|s| s.name == "cluster.handover.begin"));
    assert!(spans.iter().any(|s| s.name == "cluster.handover.commit"));
    assert!(spans.iter().any(|s| s.name == "cluster.handover.abort"));
}
