//! Cluster restart from disk: every shard coordinator is torn down and
//! rebuilt purely from its file-backed per-shard WAL after a churn
//! scenario (writes, seals, a committed rebalance handover, a shard
//! death). The bar is the same as for live churn: every acked object is
//! served bit-exact or reported honestly unavailable — never wrong bytes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use rain_cluster::{ClusterError, ClusterStore, ShardId};
use rain_codes::CodeSpec;
use rain_storage::{FsyncPolicy, GroupConfig, SelectionPolicy, StorageError};

fn spec() -> CodeSpec {
    CodeSpec::bcode_6_4()
}

fn config() -> GroupConfig {
    GroupConfig {
        threshold: 64,
        capacity: 160,
        compact_watermark: 0.6,
        ..GroupConfig::disabled()
    }
    .logged()
}

/// A fresh per-test WAL directory under the system temp dir.
fn wal_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("rain-cluster-{tag}-{pid}-{seq}"));
    std::fs::create_dir_all(&dir).expect("create wal dir");
    dir
}

fn payload(i: u32, len: usize) -> Vec<u8> {
    (0..len).map(|j| (i as usize * 31 + j * 7) as u8).collect()
}

/// Drive a churn scenario against a file-backed cluster and return the
/// cluster plus the acked contents ledger.
fn churned_cluster(
    dir: &std::path::Path,
    fsync: FsyncPolicy,
    checkpoint_every: u64,
) -> (ClusterStore, HashMap<String, Vec<u8>>) {
    let config = config()
        .with_fsync(fsync)
        .with_checkpoint_every(checkpoint_every);
    let members: Vec<ShardId> = vec![0, 1, 2];
    let mut cluster = ClusterStore::with_wal_dir(spec(), config, &members, 8, dir).unwrap();
    let mut acked: HashMap<String, Vec<u8>> = HashMap::new();

    // Phase 1: a mix of grouped (small) and whole (large) objects.
    let epoch = cluster.epoch();
    for i in 0..24u32 {
        let len = if i % 5 == 0 {
            120
        } else {
            24 + (i as usize % 32)
        };
        let data = payload(i, len);
        let key = format!("obj-{i}");
        cluster.store(&key, &data, epoch).unwrap();
        acked.insert(key, data);
    }
    cluster.flush_all();

    // Phase 2: overwrites, deletes, and fresh open-group tails.
    for i in 0..6u32 {
        let data = payload(100 + i, 40);
        let key = format!("obj-{i}");
        cluster.store(&key, &data, epoch).unwrap();
        acked.insert(key, data);
    }
    cluster.delete("obj-7", epoch).unwrap();
    acked.remove("obj-7");

    // Phase 3: a rebalance — shard 3 joins, sealed units migrate, the
    // view commits. The moved units land in the new owner's WAL as
    // GroupImport records and leave GroupEvict records behind.
    cluster.begin_handover(&[0, 1, 2, 3]).unwrap();
    while cluster.transfer_next().unwrap().is_some() {}
    cluster.commit_handover().unwrap();
    let epoch = cluster.epoch();

    // Phase 4: post-rebalance traffic at the new epoch.
    for i in 30..42u32 {
        let data = payload(i, 20 + (i as usize % 48));
        let key = format!("obj-{i}");
        cluster.store(&key, &data, epoch).unwrap();
        acked.insert(key, data);
    }
    (cluster, acked)
}

/// Sweep every acked object and classify the outcome.
fn sweep(
    cluster: &mut ClusterStore,
    acked: &HashMap<String, Vec<u8>>,
) -> (usize, usize, Vec<String>) {
    let epoch = cluster.epoch();
    let mut exact = 0usize;
    let mut unavailable = 0usize;
    let mut wrong = Vec::new();
    for (key, expect) in acked {
        match cluster.retrieve(key, SelectionPolicy::FirstK, epoch) {
            Ok(read) => {
                if &read.bytes == expect {
                    exact += 1;
                } else {
                    wrong.push(key.clone());
                }
            }
            Err(ClusterError::ShardDown(_))
            | Err(ClusterError::Storage(StorageError::UnknownObject { .. }))
            | Err(ClusterError::Storage(StorageError::NotEnoughNodes { .. })) => {
                unavailable += 1;
            }
            Err(e) => panic!("retrieve({key}) failed dishonestly: {e}"),
        }
    }
    (exact, unavailable, wrong)
}

#[test]
fn every_shard_restarts_from_its_on_disk_wal_bit_exact() {
    let dir = wal_dir("exact");
    let (mut cluster, acked) = churned_cluster(&dir, FsyncPolicy::Always, 0);

    // Restart every shard purely from its file: coordinator memory and the
    // in-memory log handle are discarded.
    for s in [0usize, 1, 2, 3] {
        let report = cluster.restart_shard_from_disk(s).unwrap();
        assert!(!report.torn_tail, "Always-sync writes whole frames");
    }
    let (exact, unavailable, wrong) = sweep(&mut cluster, &acked);
    assert!(wrong.is_empty(), "wrong bytes after restart: {wrong:?}");
    assert_eq!(unavailable, 0, "every shard is back up and fully synced");
    assert_eq!(exact, acked.len());

    // The restarted cluster keeps working at the committed epoch.
    let epoch = cluster.epoch();
    cluster.store("post-restart", &[7u8; 96], epoch).unwrap();
    assert_eq!(
        cluster
            .retrieve("post-restart", SelectionPolicy::FirstK, epoch)
            .unwrap()
            .bytes,
        vec![7u8; 96]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_dead_shard_stays_honestly_dark_while_the_rest_restart() {
    let dir = wal_dir("dark");
    let (mut cluster, acked) = churned_cluster(&dir, FsyncPolicy::Always, 8);

    cluster.fail_shard(2);
    for s in [0usize, 1, 3] {
        cluster.restart_shard_from_disk(s).unwrap();
    }
    let (exact, unavailable, wrong) = sweep(&mut cluster, &acked);
    assert!(wrong.is_empty(), "wrong bytes after restart: {wrong:?}");
    assert_eq!(
        exact + unavailable,
        acked.len(),
        "every read is bit-exact or honestly unavailable"
    );
    assert!(
        unavailable > 0,
        "the dead shard's units must go dark, not resolve wrongly"
    );

    // The dead shard's log is still on disk: restarting it brings its
    // objects back bit-exact.
    cluster.restart_shard_from_disk(2).unwrap();
    let (exact, unavailable, wrong) = sweep(&mut cluster, &acked);
    assert!(wrong.is_empty());
    assert_eq!(unavailable, 0);
    assert_eq!(exact, acked.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn relaxed_fsync_may_lose_the_unsynced_tail_but_never_serves_wrong_bytes() {
    let dir = wal_dir("relaxed");
    let (mut cluster, acked) = churned_cluster(&dir, FsyncPolicy::EveryN(4), 0);

    // No sync before the restart: whatever the group-commit batcher still
    // holds in user space is genuinely gone, like a process crash.
    for s in [0usize, 1, 2, 3] {
        cluster.restart_shard_from_disk(s).unwrap();
    }
    let (exact, unavailable, wrong) = sweep(&mut cluster, &acked);
    assert!(wrong.is_empty(), "wrong bytes after restart: {wrong:?}");
    assert_eq!(exact + unavailable, acked.len());

    // Re-run with an explicit sync barrier before the restart: nothing may
    // be lost then, relaxed policy or not.
    let dir2 = wal_dir("relaxed-synced");
    let (mut cluster, acked) = churned_cluster(&dir2, FsyncPolicy::EveryN(4), 0);
    for s in [0usize, 1, 2, 3] {
        if let Some(shard) = cluster.shard_mut(s) {
            shard.sync_wal().unwrap();
        }
        cluster.restart_shard_from_disk(s).unwrap();
    }
    let (exact, unavailable, wrong) = sweep(&mut cluster, &acked);
    assert!(
        wrong.is_empty(),
        "wrong bytes after synced restart: {wrong:?}"
    );
    assert_eq!(unavailable, 0, "synced tails survive a relaxed policy");
    assert_eq!(exact, acked.len());
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}
