//! Cluster restart from disk: every shard coordinator is torn down and
//! rebuilt purely from its file-backed per-shard WAL after a churn
//! scenario (writes, seals, a committed rebalance handover, a shard
//! death). The bar is the same as for live churn: every acked object is
//! served bit-exact or reported honestly unavailable — never wrong bytes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use rain_cluster::{ClusterError, ClusterStore, ShardId};
use rain_codes::CodeSpec;
use rain_storage::{FsyncPolicy, GroupConfig, SelectionPolicy, StorageError};

fn spec() -> CodeSpec {
    CodeSpec::bcode_6_4()
}

fn config() -> GroupConfig {
    GroupConfig {
        threshold: 64,
        capacity: 160,
        compact_watermark: 0.6,
        ..GroupConfig::disabled()
    }
    .logged()
}

/// A fresh per-test WAL directory under the system temp dir.
fn wal_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("rain-cluster-{tag}-{pid}-{seq}"));
    std::fs::create_dir_all(&dir).expect("create wal dir");
    dir
}

fn payload(i: u32, len: usize) -> Vec<u8> {
    (0..len).map(|j| (i as usize * 31 + j * 7) as u8).collect()
}

/// Drive a churn scenario against a file-backed cluster and return the
/// cluster plus the acked contents ledger.
fn churned_cluster(
    dir: &std::path::Path,
    fsync: FsyncPolicy,
    checkpoint_every: u64,
) -> (ClusterStore, HashMap<String, Vec<u8>>) {
    let config = config()
        .with_fsync(fsync)
        .with_checkpoint_every(checkpoint_every);
    churned_cluster_cfg(dir, config)
}

/// Same churn, caller-supplied [`GroupConfig`] (segmented layouts etc.).
fn churned_cluster_cfg(
    dir: &std::path::Path,
    config: GroupConfig,
) -> (ClusterStore, HashMap<String, Vec<u8>>) {
    let members: Vec<ShardId> = vec![0, 1, 2];
    let mut cluster = ClusterStore::with_wal_dir(spec(), config, &members, 8, dir).unwrap();
    let mut acked: HashMap<String, Vec<u8>> = HashMap::new();

    // Phase 1: a mix of grouped (small) and whole (large) objects.
    let epoch = cluster.epoch();
    for i in 0..24u32 {
        let len = if i % 5 == 0 {
            120
        } else {
            24 + (i as usize % 32)
        };
        let data = payload(i, len);
        let key = format!("obj-{i}");
        cluster.store(&key, &data, epoch).unwrap();
        acked.insert(key, data);
    }
    cluster.flush_all();

    // Phase 2: overwrites, deletes, and fresh open-group tails.
    for i in 0..6u32 {
        let data = payload(100 + i, 40);
        let key = format!("obj-{i}");
        cluster.store(&key, &data, epoch).unwrap();
        acked.insert(key, data);
    }
    cluster.delete("obj-7", epoch).unwrap();
    acked.remove("obj-7");

    // Phase 3: a rebalance — shard 3 joins, sealed units migrate, the
    // view commits. The moved units land in the new owner's WAL as
    // GroupImport records and leave GroupEvict records behind.
    cluster.begin_handover(&[0, 1, 2, 3]).unwrap();
    while cluster.transfer_next().unwrap().is_some() {}
    cluster.commit_handover().unwrap();
    let epoch = cluster.epoch();

    // Phase 4: post-rebalance traffic at the new epoch.
    for i in 30..42u32 {
        let data = payload(i, 20 + (i as usize % 48));
        let key = format!("obj-{i}");
        cluster.store(&key, &data, epoch).unwrap();
        acked.insert(key, data);
    }
    (cluster, acked)
}

/// Sweep every acked object and classify the outcome.
fn sweep(
    cluster: &mut ClusterStore,
    acked: &HashMap<String, Vec<u8>>,
) -> (usize, usize, Vec<String>) {
    let epoch = cluster.epoch();
    let mut exact = 0usize;
    let mut unavailable = 0usize;
    let mut wrong = Vec::new();
    for (key, expect) in acked {
        match cluster.retrieve(key, SelectionPolicy::FirstK, epoch) {
            Ok(read) => {
                if &read.bytes == expect {
                    exact += 1;
                } else {
                    wrong.push(key.clone());
                }
            }
            Err(ClusterError::ShardDown(_))
            | Err(ClusterError::Storage(StorageError::UnknownObject { .. }))
            | Err(ClusterError::Storage(StorageError::NotEnoughNodes { .. })) => {
                unavailable += 1;
            }
            Err(e) => panic!("retrieve({key}) failed dishonestly: {e}"),
        }
    }
    (exact, unavailable, wrong)
}

#[test]
fn every_shard_restarts_from_its_on_disk_wal_bit_exact() {
    let dir = wal_dir("exact");
    let (mut cluster, acked) = churned_cluster(&dir, FsyncPolicy::Always, 0);

    // Restart every shard purely from its file: coordinator memory and the
    // in-memory log handle are discarded.
    for s in [0usize, 1, 2, 3] {
        let report = cluster.restart_shard_from_disk(s).unwrap();
        assert!(!report.torn_tail, "Always-sync writes whole frames");
    }
    let (exact, unavailable, wrong) = sweep(&mut cluster, &acked);
    assert!(wrong.is_empty(), "wrong bytes after restart: {wrong:?}");
    assert_eq!(unavailable, 0, "every shard is back up and fully synced");
    assert_eq!(exact, acked.len());

    // The restarted cluster keeps working at the committed epoch.
    let epoch = cluster.epoch();
    cluster.store("post-restart", &[7u8; 96], epoch).unwrap();
    assert_eq!(
        cluster
            .retrieve("post-restart", SelectionPolicy::FirstK, epoch)
            .unwrap()
            .bytes,
        vec![7u8; 96]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_dead_shard_stays_honestly_dark_while_the_rest_restart() {
    let dir = wal_dir("dark");
    let (mut cluster, acked) = churned_cluster(&dir, FsyncPolicy::Always, 8);

    cluster.fail_shard(2);
    for s in [0usize, 1, 3] {
        cluster.restart_shard_from_disk(s).unwrap();
    }
    let (exact, unavailable, wrong) = sweep(&mut cluster, &acked);
    assert!(wrong.is_empty(), "wrong bytes after restart: {wrong:?}");
    assert_eq!(
        exact + unavailable,
        acked.len(),
        "every read is bit-exact or honestly unavailable"
    );
    assert!(
        unavailable > 0,
        "the dead shard's units must go dark, not resolve wrongly"
    );

    // The dead shard's log is still on disk: restarting it brings its
    // objects back bit-exact.
    cluster.restart_shard_from_disk(2).unwrap();
    let (exact, unavailable, wrong) = sweep(&mut cluster, &acked);
    assert!(wrong.is_empty());
    assert_eq!(unavailable, 0);
    assert_eq!(exact, acked.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn relaxed_fsync_may_lose_the_unsynced_tail_but_never_serves_wrong_bytes() {
    let dir = wal_dir("relaxed");
    let (mut cluster, acked) = churned_cluster(&dir, FsyncPolicy::EveryN(4), 0);

    // No sync before the restart: whatever the group-commit batcher still
    // holds in user space is genuinely gone, like a process crash.
    for s in [0usize, 1, 2, 3] {
        cluster.restart_shard_from_disk(s).unwrap();
    }
    let (exact, unavailable, wrong) = sweep(&mut cluster, &acked);
    assert!(wrong.is_empty(), "wrong bytes after restart: {wrong:?}");
    assert_eq!(exact + unavailable, acked.len());

    // Re-run with an explicit sync barrier before the restart: nothing may
    // be lost then, relaxed policy or not.
    let dir2 = wal_dir("relaxed-synced");
    let (mut cluster, acked) = churned_cluster(&dir2, FsyncPolicy::EveryN(4), 0);
    for s in [0usize, 1, 2, 3] {
        if let Some(shard) = cluster.shard_mut(s) {
            shard.sync_wal().unwrap();
        }
        cluster.restart_shard_from_disk(s).unwrap();
    }
    let (exact, unavailable, wrong) = sweep(&mut cluster, &acked);
    assert!(
        wrong.is_empty(),
        "wrong bytes after synced restart: {wrong:?}"
    );
    assert_eq!(unavailable, 0, "synced tails survive a relaxed policy");
    assert_eq!(exact, acked.len());
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

// ---- full-cluster restart: metalog + every shard WAL -----------------------

#[test]
fn the_whole_cluster_recovers_from_disk_after_a_power_loss() {
    let dir = wal_dir("full");
    let config = config().with_fsync(FsyncPolicy::Always);
    let (cluster, acked) = churned_cluster(&dir, FsyncPolicy::Always, 0);
    let committed_epoch = cluster.epoch();
    assert_eq!(committed_epoch, 2, "the churn committed one rebalance");

    // Power loss: every coordinator's memory is gone — directory, view,
    // handover, object tables. Only the node fabrics and the files remain.
    let survivors = cluster.crash();
    let (mut cluster, report) =
        ClusterStore::recover_from_disk(spec(), config, &dir, survivors).unwrap();

    assert_eq!(
        cluster.epoch(),
        committed_epoch,
        "the committed view is back"
    );
    assert!(!report.meta_torn_tail, "Always-sync writes whole frames");
    assert!(!report.handover_rolled_back, "no handover was in flight");
    assert_eq!(report.shard_reports.len(), 4);
    assert_eq!(report.adopted, 0, "nothing un-synced under Always");
    assert_eq!(report.directory_dropped, 0);
    assert!(!report.pending_replan);

    let (exact, unavailable, wrong) = sweep(&mut cluster, &acked);
    assert!(wrong.is_empty(), "wrong bytes after recovery: {wrong:?}");
    assert_eq!(unavailable, 0, "fully synced cluster loses nothing");
    assert_eq!(exact, acked.len());

    // The recovered cluster keeps serving writes at the committed epoch.
    let epoch = cluster.epoch();
    cluster.store("post-recovery", &[3u8; 80], epoch).unwrap();
    assert_eq!(
        cluster
            .retrieve("post-recovery", SelectionPolicy::FirstK, epoch)
            .unwrap()
            .bytes,
        vec![3u8; 80]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metalog_checkpoints_compact_the_log_and_recover_identically() {
    let dir = wal_dir("ckpt");
    let config = config()
        .with_fsync(FsyncPolicy::Always)
        .with_checkpoint_every(4);
    let (cluster, acked) = churned_cluster(&dir, FsyncPolicy::Always, 4);
    let epoch = cluster.epoch();
    let survivors = cluster.crash();
    let (mut cluster, report) =
        ClusterStore::recover_from_disk(spec(), config, &dir, survivors).unwrap();

    assert_eq!(cluster.epoch(), epoch);
    assert!(
        report.meta_records_replayed > 0,
        "a checkpointed metalog still replays its retained suffix"
    );
    let (exact, unavailable, wrong) = sweep(&mut cluster, &acked);
    assert!(wrong.is_empty(), "wrong bytes after recovery: {wrong:?}");
    assert_eq!(unavailable, 0);
    assert_eq!(exact, acked.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_crash_between_prepare_and_commit_rolls_the_handover_back() {
    let dir = wal_dir("midhand");
    let config = config().with_fsync(FsyncPolicy::Always);
    let members: Vec<ShardId> = vec![0, 1, 2];
    let mut cluster = ClusterStore::with_wal_dir(spec(), config, &members, 8, &dir).unwrap();
    let mut acked = HashMap::new();
    let epoch = cluster.epoch();
    for i in 0..20u32 {
        let data = payload(i, 24 + (i as usize % 40));
        let key = format!("obj-{i}");
        cluster.store(&key, &data, epoch).unwrap();
        acked.insert(key, data);
    }
    cluster.flush_all();

    // Prepare a rebalance onto a joining shard and land *some* units, but
    // crash before the commit: the prepare and every landed unit are in the
    // metalog, the view commit is not.
    cluster.begin_handover(&[0, 1, 2, 3]).unwrap();
    cluster.transfer_next().unwrap();
    cluster.transfer_next().unwrap();
    let survivors = cluster.crash();

    let (mut cluster, report) =
        ClusterStore::recover_from_disk(spec(), config, &dir, survivors).unwrap();
    assert!(
        report.handover_rolled_back,
        "a prepared-but-uncommitted handover must roll back"
    );
    assert_eq!(cluster.epoch(), epoch, "the epoch never advanced");
    assert!(
        report.strays_evicted > 0,
        "the joiner's half-transferred copies are swept"
    );

    // Every acked object still reads bit-exact from its *old* owner: the
    // sources evict nothing before the commit.
    let (exact, unavailable, wrong) = sweep(&mut cluster, &acked);
    assert!(wrong.is_empty(), "wrong bytes after rollback: {wrong:?}");
    assert_eq!(unavailable, 0);
    assert_eq!(exact, acked.len());

    // And the transition can be re-run to completion afterwards.
    cluster.begin_handover(&[0, 1, 2, 3]).unwrap();
    while cluster.transfer_next().unwrap().is_some() {}
    cluster.commit_handover().unwrap();
    let (exact, _, wrong) = sweep(&mut cluster, &acked);
    assert!(wrong.is_empty());
    assert_eq!(exact, acked.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_shard_whose_machines_never_return_recovers_honestly_dark() {
    let dir = wal_dir("lost");
    let config = config().with_fsync(FsyncPolicy::Always);
    let (cluster, acked) = churned_cluster(&dir, FsyncPolicy::Always, 0);
    let mut survivors = cluster.crash();
    assert!(survivors.lose_shard(1), "shard 1 had survivors to lose");

    let (mut cluster, report) =
        ClusterStore::recover_from_disk(spec(), config, &dir, survivors).unwrap();
    assert_eq!(report.shard_reports.len(), 3, "three shards replayed");
    let (exact, unavailable, wrong) = sweep(&mut cluster, &acked);
    assert!(
        wrong.is_empty(),
        "wrong bytes after partial recovery: {wrong:?}"
    );
    assert_eq!(
        exact + unavailable,
        acked.len(),
        "every read is bit-exact or honestly unavailable"
    );
    assert!(
        unavailable > 0,
        "the lost shard's keys must go dark, not resolve wrongly"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_torn_final_metalog_record_is_tolerated() {
    let dir = wal_dir("torn-meta");
    let config = config().with_fsync(FsyncPolicy::Always);
    let (cluster, acked) = churned_cluster(&dir, FsyncPolicy::Always, 0);
    let epoch = cluster.epoch();
    let survivors = cluster.crash();

    // Model a power loss mid-append: a partial frame at the metalog tail.
    let meta_path = dir.join("cluster.meta");
    let mut bytes = std::fs::read(&meta_path).unwrap();
    bytes.extend_from_slice(&[0x55, 0xAA, 0x01]);
    std::fs::write(&meta_path, &bytes).unwrap();

    let (mut cluster, report) =
        ClusterStore::recover_from_disk(spec(), config, &dir, survivors).unwrap();
    assert!(report.meta_torn_tail, "the partial frame is detected");
    assert_eq!(cluster.epoch(), epoch);
    let (exact, unavailable, wrong) = sweep(&mut cluster, &acked);
    assert!(wrong.is_empty(), "wrong bytes after torn tail: {wrong:?}");
    assert_eq!(unavailable, 0);
    assert_eq!(exact, acked.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn relaxed_fsync_cluster_recovery_is_honest_about_unsynced_tails() {
    let dir = wal_dir("full-relaxed");
    let config = config().with_fsync(FsyncPolicy::EveryN(4));
    let (cluster, acked) = churned_cluster(&dir, FsyncPolicy::EveryN(4), 0);
    let survivors = cluster.crash();
    let (mut cluster, _report) =
        ClusterStore::recover_from_disk(spec(), config, &dir, survivors).unwrap();
    let (exact, unavailable, wrong) = sweep(&mut cluster, &acked);
    assert!(
        wrong.is_empty(),
        "wrong bytes after relaxed recovery: {wrong:?}"
    );
    assert_eq!(
        exact + unavailable,
        acked.len(),
        "unsynced tails may be lost but never misread"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_segmented_cluster_recovers_from_its_segment_directories() {
    let dir = wal_dir("segmented");
    let config = config().with_fsync(FsyncPolicy::Always).with_segments(256);
    let (cluster, acked) = churned_cluster_cfg(&dir, config);
    let epoch = cluster.epoch();

    // The logs really are segment directories, not flat files.
    assert!(dir.join("cluster.meta.d").is_dir(), "metalog is segmented");
    assert!(
        dir.join("shard-0.wal.d").is_dir(),
        "shard WALs are segmented"
    );
    let segs = std::fs::read_dir(dir.join("shard-0.wal.d"))
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".seg"))
        .count();
    assert!(segs >= 2, "the churn rotated at least one sealed segment");

    let survivors = cluster.crash();
    let (mut cluster, report) =
        ClusterStore::recover_from_disk(spec(), config, &dir, survivors).unwrap();
    assert_eq!(cluster.epoch(), epoch);
    assert!(!report.meta_torn_tail);
    let (exact, unavailable, wrong) = sweep(&mut cluster, &acked);
    assert!(
        wrong.is_empty(),
        "wrong bytes after segmented recovery: {wrong:?}"
    );
    assert_eq!(unavailable, 0);
    assert_eq!(exact, acked.len());
    let _ = std::fs::remove_dir_all(&dir);
}
