//! Arithmetic in GF(2^8), used by the Reed-Solomon baseline.
//!
//! The field is `GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1)`, i.e. the
//! primitive polynomial `0x11d` that is conventional for storage-oriented
//! Reed-Solomon codes. Scalar multiplication and division go through log/exp
//! tables built once at start-up.
//!
//! # Bulk-multiply kernel design
//!
//! The hot operation for Reed-Solomon is `dst[i] ^= c * src[i]` over a whole
//! symbol buffer with a fixed coefficient `c` ([`Gf256::mul_acc_slice`]).
//! Because multiplication by a constant is linear over GF(2), the product of
//! any byte splits over its nibbles:
//!
//! ```text
//! c * x  ==  c * (x & 0x0f)  ^  c * (x & 0xf0)
//! ```
//!
//! so a [`MulTable`] stores just two 16-entry tables per coefficient — the
//! products of the low and the high nibble (the ISA-L / klauspost layout).
//! That gives a branch-free kernel of two tiny table lookups per byte, fused
//! with word-wide accumulation into `u64` lanes; on x86-64 with AVX2 the same
//! two tables are applied to 32 bytes at once with byte shuffles
//! (`vpshufb`), which is how ISA-L and klauspost/reedsolomon reach tens of
//! GB/s. The dispatch is a runtime feature check with a safe, portable lane
//! kernel as the fallback.
//!
//! [`ReedSolomon::new`](crate::ReedSolomon) precomputes one `MulTable` per
//! generator-matrix entry so encoding never rebuilds tables. The seed's
//! byte-at-a-time log/exp kernel is retained as
//! [`Gf256::scalar_mul_acc_slice`]; the bench harness
//! (`cargo run -p bench --release`) asserts the table-driven path stays
//! ≥ 4x faster on 64 KiB blocks, and unit tests pin both paths to identical
//! output on every length in `0..=129`.

/// The primitive polynomial x^8 + x^4 + x^3 + x^2 + 1.
pub const PRIMITIVE_POLY: u16 = 0x11d;

/// Precomputed log/exp tables for GF(2^8).
#[derive(Clone)]
pub struct Gf256 {
    exp: [u8; 512],
    log: [u8; 256],
}

impl std::fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gf256").finish()
    }
}

impl Default for Gf256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Gf256 {
    /// Build the log/exp tables.
    pub fn new() -> Self {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().take(255).enumerate() {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIMITIVE_POLY;
            }
        }
        // Duplicate the table so that exp[a + b] never needs a modulo.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Gf256 { exp, log }
    }

    /// Field addition (XOR).
    #[inline]
    pub fn add(&self, a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    /// Multiplicative inverse. Panics on zero.
    #[inline]
    pub fn inv(&self, a: u8) -> u8 {
        assert_ne!(a, 0, "zero has no inverse in GF(256)");
        self.exp[255 - self.log[a as usize] as usize]
    }

    /// Field division `a / b`. Panics if `b == 0`.
    #[inline]
    pub fn div(&self, a: u8, b: u8) -> u8 {
        assert_ne!(b, 0, "division by zero in GF(256)");
        if a == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + 255 - self.log[b as usize] as usize]
        }
    }

    /// Exponentiation `a^e`.
    pub fn pow(&self, a: u8, mut e: u32) -> u8 {
        if a == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        let mut result = 1u8;
        let mut base = a;
        while e > 0 {
            if e & 1 == 1 {
                result = self.mul(result, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        result
    }

    /// The generator element alpha = 2.
    #[inline]
    pub fn generator(&self) -> u8 {
        2
    }

    /// Build the split multiply tables for a fixed coefficient.
    pub fn mul_table(&self, c: u8) -> MulTable {
        MulTable::new(self, c)
    }

    /// `dst[i] ^= c * src[i]` for all i — the core Reed-Solomon kernel,
    /// routed through the table-driven bulk path (see the module docs).
    ///
    /// Callers that reuse the same coefficient across many buffers should
    /// precompute a [`MulTable`] once and call [`MulTable::mul_acc`]
    /// directly; this convenience wrapper rebuilds the 32-byte table per
    /// call, which is negligible for symbol-sized buffers but measurable for
    /// very short ones.
    pub fn mul_acc_slice(&self, dst: &mut [u8], src: &[u8], c: u8) {
        assert_eq!(dst.len(), src.len());
        if c == 0 {
            return;
        }
        if c == 1 {
            crate::xor::xor_into(dst, src);
            return;
        }
        self.mul_table(c).mul_acc(dst, src);
    }

    /// Retained byte-at-a-time log/exp kernel (the seed implementation of
    /// [`Gf256::mul_acc_slice`]): two dependent table lookups and a
    /// zero-check branch per byte. Kept as the baseline the bench harness
    /// measures the table-driven kernel against and the oracle the
    /// equivalence tests compare it to.
    pub fn scalar_mul_acc_slice(&self, dst: &mut [u8], src: &[u8], c: u8) {
        assert_eq!(dst.len(), src.len());
        if c == 0 {
            return;
        }
        if c == 1 {
            crate::xor::scalar_xor_into(dst, src);
            return;
        }
        let log_c = self.log[c as usize] as usize;
        for (d, s) in dst.iter_mut().zip(src) {
            if *s != 0 {
                *d ^= self.exp[log_c + self.log[*s as usize] as usize];
            }
        }
    }
}

/// Split multiplication tables for one fixed GF(2^8) coefficient: the
/// products of every low nibble and every high nibble (2 x 16 bytes).
///
/// See the [module docs](self) for why this layout is the bulk-multiply
/// sweet spot. Constructed via [`Gf256::mul_table`] or [`MulTable::new`];
/// `ReedSolomon` precomputes one per generator-matrix entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MulTable {
    /// `lo[x] = c * x` for `x in 0..16`.
    lo: [u8; 16],
    /// `hi[x] = c * (x << 4)` for `x in 0..16`.
    hi: [u8; 16],
}

/// Name of the bulk-multiply kernel [`MulTable::mul_acc`] dispatches to on
/// this CPU: `"avx2"` or `"portable"`. The bench harness only enforces its
/// SIMD-level speedup bar when a SIMD kernel is actually active.
pub fn active_bulk_kernel() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return "avx2";
        }
    }
    "portable"
}

impl MulTable {
    /// Build the split tables for coefficient `c`.
    pub fn new(gf: &Gf256, c: u8) -> Self {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for x in 0..16u8 {
            lo[x as usize] = gf.mul(c, x);
            hi[x as usize] = gf.mul(c, x << 4);
        }
        MulTable { lo, hi }
    }

    /// Multiply a single byte by the table's coefficient.
    #[inline]
    pub fn mul(&self, x: u8) -> u8 {
        self.lo[(x & 0x0f) as usize] ^ self.hi[(x >> 4) as usize]
    }

    /// `dst[i] ^= c * src[i]` for all i, using the fastest kernel available
    /// on this CPU. Panics if the lengths differ.
    pub fn mul_acc(&self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len());
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: the avx2 feature was just detected at runtime, and
                // the kernel only reads/writes within the given slices.
                unsafe { self.mul_acc_avx2(dst, src) };
                return;
            }
        }
        self.mul_acc_portable(dst, src);
    }

    /// Portable fallback: two table lookups per byte, accumulated into
    /// `u64` lanes like `xor::xor_into`.
    fn mul_acc_portable(&self, dst: &mut [u8], src: &[u8]) {
        const WORD: usize = std::mem::size_of::<u64>();
        let split = dst.len() - dst.len() % WORD;
        let (dst_words, dst_tail) = dst.split_at_mut(split);
        let (src_words, src_tail) = src.split_at(split);
        for (d, s) in dst_words
            .chunks_exact_mut(WORD)
            .zip(src_words.chunks_exact(WORD))
        {
            let mut prod = [0u8; WORD];
            for (p, &x) in prod.iter_mut().zip(s) {
                *p = self.mul(x);
            }
            let word = u64::from_ne_bytes((&*d).try_into().unwrap()) ^ u64::from_ne_bytes(prod);
            d.copy_from_slice(&word.to_ne_bytes());
        }
        for (d, &s) in dst_tail.iter_mut().zip(src_tail) {
            *d ^= self.mul(s);
        }
    }

    /// AVX2 kernel: both 16-entry tables live in one register each and
    /// `vpshufb` performs 32 parallel lookups per step, exactly the ISA-L /
    /// klauspost scheme.
    ///
    /// # Safety
    /// Caller must ensure the `avx2` target feature is available.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_acc_avx2(&self, dst: &mut [u8], src: &[u8]) {
        use std::arch::x86_64::*;

        const LANES: usize = 32;
        let lo_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(self.lo.as_ptr() as *const __m128i));
        let hi_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(self.hi.as_ptr() as *const __m128i));
        let nibble = _mm256_set1_epi8(0x0f);

        let split = dst.len() - dst.len() % LANES;
        let mut i = 0;
        while i < split {
            let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let lo_idx = _mm256_and_si256(s, nibble);
            let hi_idx = _mm256_and_si256(_mm256_srli_epi64::<4>(s), nibble);
            let prod = _mm256_xor_si256(
                _mm256_shuffle_epi8(lo_t, lo_idx),
                _mm256_shuffle_epi8(hi_t, hi_idx),
            );
            let d = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                dst.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_xor_si256(d, prod),
            );
            i += LANES;
        }
        for (d, &s) in dst[split..].iter_mut().zip(&src[split..]) {
            *d ^= self.mul(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_identity_and_zero() {
        let gf = Gf256::new();
        for a in 0..=255u8 {
            assert_eq!(gf.mul(a, 1), a);
            assert_eq!(gf.mul(1, a), a);
            assert_eq!(gf.mul(a, 0), 0);
            assert_eq!(gf.mul(0, a), 0);
        }
    }

    #[test]
    fn mul_commutative_and_associative_spot_checks() {
        let gf = Gf256::new();
        for a in [3u8, 17, 99, 200, 255] {
            for b in [5u8, 42, 128, 254] {
                assert_eq!(gf.mul(a, b), gf.mul(b, a));
                for c in [7u8, 33, 201] {
                    assert_eq!(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn inverse_is_correct_for_all_nonzero() {
        let gf = Gf256::new();
        for a in 1..=255u8 {
            assert_eq!(gf.mul(a, gf.inv(a)), 1, "a = {a}");
        }
    }

    #[test]
    fn distributive_law_spot_checks() {
        let gf = Gf256::new();
        for a in [2u8, 9, 77, 190] {
            for b in [1u8, 58, 213] {
                for c in [4u8, 131, 255] {
                    assert_eq!(gf.mul(a, b ^ c), gf.mul(a, b) ^ gf.mul(a, c));
                }
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        let gf = Gf256::new();
        let g = gf.generator();
        let mut seen = [false; 256];
        let mut x = 1u8;
        for _ in 0..255 {
            assert!(!seen[x as usize], "generator order < 255");
            seen[x as usize] = true;
            x = gf.mul(x, g);
        }
        assert_eq!(x, 1);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let gf = Gf256::new();
        let mut acc = 1u8;
        for e in 0..20u32 {
            assert_eq!(gf.pow(3, e), acc);
            acc = gf.mul(acc, 3);
        }
        assert_eq!(gf.pow(0, 0), 1);
        assert_eq!(gf.pow(0, 5), 0);
    }

    #[test]
    fn div_is_inverse_of_mul() {
        let gf = Gf256::new();
        for a in [0u8, 1, 7, 100, 255] {
            for b in [1u8, 3, 99, 254] {
                assert_eq!(gf.div(gf.mul(a, b), b), a);
            }
        }
    }

    #[test]
    fn mul_table_agrees_with_field_mul_for_all_pairs() {
        let gf = Gf256::new();
        for c in 0..=255u8 {
            let table = gf.mul_table(c);
            for x in 0..=255u8 {
                assert_eq!(table.mul(x), gf.mul(c, x), "c = {c}, x = {x}");
            }
        }
    }

    #[test]
    fn mul_acc_slice_matches_scalar_path() {
        let gf = Gf256::new();
        let src: Vec<u8> = (0..32).map(|i| (i * 13 + 1) as u8).collect();
        let mut dst = vec![0xABu8; 32];
        let mut expected = dst.clone();
        gf.mul_acc_slice(&mut dst, &src, 0x5c);
        for (e, s) in expected.iter_mut().zip(&src) {
            *e ^= gf.mul(*s, 0x5c);
        }
        assert_eq!(dst, expected);
    }

    #[test]
    fn bulk_kernel_matches_scalar_kernel_on_all_small_lengths() {
        // Every length around the 8-byte and 32-byte lane boundaries, a mix
        // of coefficients including 0, 1, and high-bit values, and sources
        // containing zero bytes (the scalar kernel branches on them).
        let gf = Gf256::new();
        for c in [0u8, 1, 2, 0x1d, 0x5c, 0x8e, 0xff] {
            for len in 0..=129usize {
                let src: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
                let mut fast: Vec<u8> = (0..len).map(|i| (i * 17 + 3) as u8).collect();
                let mut slow = fast.clone();
                gf.mul_acc_slice(&mut fast, &src, c);
                gf.scalar_mul_acc_slice(&mut slow, &src, c);
                assert_eq!(fast, slow, "c = {c}, len = {len}");
            }
        }
    }

    #[test]
    fn portable_kernel_matches_dispatched_kernel() {
        // On AVX2 hosts `mul_acc` takes the SIMD path; pin the portable lane
        // kernel to the same results so non-x86 targets are covered by the
        // same expectations.
        let gf = Gf256::new();
        for c in [2u8, 0x1d, 0xfe] {
            let table = gf.mul_table(c);
            for len in [0usize, 1, 7, 8, 31, 32, 33, 100, 129] {
                let src: Vec<u8> = (0..len).map(|i| (i * 29 + 13) as u8).collect();
                let mut a: Vec<u8> = (0..len).map(|i| (i * 11 + 1) as u8).collect();
                let mut b = a.clone();
                table.mul_acc(&mut a, &src);
                table.mul_acc_portable(&mut b, &src);
                assert_eq!(a, b, "c = {c}, len = {len}");
            }
        }
    }
}
