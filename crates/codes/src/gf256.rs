//! Arithmetic in GF(2^8), used by the Reed-Solomon baseline.
//!
//! The field is GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1), i.e. the primitive
//! polynomial `0x11d` that is conventional for storage-oriented
//! Reed-Solomon codes. Multiplication and division go through log/exp
//! tables built once at start-up.

/// The primitive polynomial x^8 + x^4 + x^3 + x^2 + 1.
pub const PRIMITIVE_POLY: u16 = 0x11d;

/// Precomputed log/exp tables for GF(2^8).
#[derive(Clone)]
pub struct Gf256 {
    exp: [u8; 512],
    log: [u8; 256],
}

impl std::fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gf256").finish()
    }
}

impl Default for Gf256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Gf256 {
    /// Build the log/exp tables.
    pub fn new() -> Self {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIMITIVE_POLY;
            }
        }
        // Duplicate the table so that exp[a + b] never needs a modulo.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Gf256 { exp, log }
    }

    /// Field addition (XOR).
    #[inline]
    pub fn add(&self, a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    /// Multiplicative inverse. Panics on zero.
    #[inline]
    pub fn inv(&self, a: u8) -> u8 {
        assert_ne!(a, 0, "zero has no inverse in GF(256)");
        self.exp[255 - self.log[a as usize] as usize]
    }

    /// Field division `a / b`. Panics if `b == 0`.
    #[inline]
    pub fn div(&self, a: u8, b: u8) -> u8 {
        assert_ne!(b, 0, "division by zero in GF(256)");
        if a == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + 255 - self.log[b as usize] as usize]
        }
    }

    /// Exponentiation `a^e`.
    pub fn pow(&self, a: u8, mut e: u32) -> u8 {
        if a == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        let mut result = 1u8;
        let mut base = a;
        while e > 0 {
            if e & 1 == 1 {
                result = self.mul(result, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        result
    }

    /// The generator element alpha = 2.
    #[inline]
    pub fn generator(&self) -> u8 {
        2
    }

    /// `dst[i] ^= c * src[i]` for all i — the core Reed-Solomon kernel.
    pub fn mul_acc_slice(&self, dst: &mut [u8], src: &[u8], c: u8) {
        assert_eq!(dst.len(), src.len());
        if c == 0 {
            return;
        }
        if c == 1 {
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= *s;
            }
            return;
        }
        let log_c = self.log[c as usize] as usize;
        for (d, s) in dst.iter_mut().zip(src) {
            if *s != 0 {
                *d ^= self.exp[log_c + self.log[*s as usize] as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_identity_and_zero() {
        let gf = Gf256::new();
        for a in 0..=255u8 {
            assert_eq!(gf.mul(a, 1), a);
            assert_eq!(gf.mul(1, a), a);
            assert_eq!(gf.mul(a, 0), 0);
            assert_eq!(gf.mul(0, a), 0);
        }
    }

    #[test]
    fn mul_commutative_and_associative_spot_checks() {
        let gf = Gf256::new();
        for a in [3u8, 17, 99, 200, 255] {
            for b in [5u8, 42, 128, 254] {
                assert_eq!(gf.mul(a, b), gf.mul(b, a));
                for c in [7u8, 33, 201] {
                    assert_eq!(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn inverse_is_correct_for_all_nonzero() {
        let gf = Gf256::new();
        for a in 1..=255u8 {
            assert_eq!(gf.mul(a, gf.inv(a)), 1, "a = {a}");
        }
    }

    #[test]
    fn distributive_law_spot_checks() {
        let gf = Gf256::new();
        for a in [2u8, 9, 77, 190] {
            for b in [1u8, 58, 213] {
                for c in [4u8, 131, 255] {
                    assert_eq!(gf.mul(a, b ^ c), gf.mul(a, b) ^ gf.mul(a, c));
                }
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        let gf = Gf256::new();
        let g = gf.generator();
        let mut seen = [false; 256];
        let mut x = 1u8;
        for _ in 0..255 {
            assert!(!seen[x as usize], "generator order < 255");
            seen[x as usize] = true;
            x = gf.mul(x, g);
        }
        assert_eq!(x, 1);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let gf = Gf256::new();
        let mut acc = 1u8;
        for e in 0..20u32 {
            assert_eq!(gf.pow(3, e), acc);
            acc = gf.mul(acc, 3);
        }
        assert_eq!(gf.pow(0, 0), 1);
        assert_eq!(gf.pow(0, 5), 0);
    }

    #[test]
    fn div_is_inverse_of_mul() {
        let gf = Gf256::new();
        for a in [0u8, 1, 7, 100, 255] {
            for b in [1u8, 3, 99, 254] {
                assert_eq!(gf.div(gf.mul(a, b), b), a);
            }
        }
    }

    #[test]
    fn mul_acc_slice_matches_scalar_path() {
        let gf = Gf256::new();
        let src: Vec<u8> = (0..32).map(|i| (i * 13 + 1) as u8).collect();
        let mut dst = vec![0xABu8; 32];
        let mut expected = dst.clone();
        gf.mul_acc_slice(&mut dst, &src, 0x5c);
        for (e, s) in expected.iter_mut().zip(&src) {
            *e ^= gf.mul(*s, 0x5c);
        }
        assert_eq!(dst, expected);
    }
}
