//! Word-wide XOR kernels shared by all array codes.
//!
//! The paper's array codes (Section 4.1) encode and decode using nothing but
//! binary XOR, so this tiny module is the hot path of the whole storage
//! stack.
//!
//! # Kernel design
//!
//! [`xor_into`] processes eight bytes per step: both slices are split into
//! `u64` lanes with `chunks_exact`, XORed as whole words, and a short scalar
//! loop handles the final `len % 8` tail. Working on native-endian `u64`
//! words keeps the kernel fully safe and portable while giving LLVM a shape
//! it reliably auto-vectorises further (AVX2 on x86-64 — in practice the
//! loop runs at memory bandwidth). [`is_zero`] and [`xor_many`] reuse the
//! same lane structure.
//!
//! The original byte-at-a-time kernel is retained as [`scalar_xor_into`] so
//! benchmarks and equivalence tests can compare the two in-tree; the bench
//! harness (`cargo run -p bench --release`) asserts the word-wide path stays
//! ≥ 4x faster on 64 KiB blocks.
//!
//! The free functions also keep an exact count of byte-XOR operations for
//! the complexity experiments (E10).

/// Lane width of the word-wide kernels, in bytes.
const WORD: usize = std::mem::size_of::<u64>();

/// XOR `src` into `dst` element-wise, eight bytes per step.
/// Panics if the lengths differ.
#[inline]
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "xor_into requires equal-length slices"
    );
    xor_into_unchecked(dst, src);
}

/// The word-wide XOR body, shared with [`xor_many`] which validates lengths
/// once up front instead of per call.
#[inline]
fn xor_into_unchecked(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    let split = dst.len() - dst.len() % WORD;
    let (dst_words, dst_tail) = dst.split_at_mut(split);
    let (src_words, src_tail) = src.split_at(split);
    for (d, s) in dst_words
        .chunks_exact_mut(WORD)
        .zip(src_words.chunks_exact(WORD))
    {
        let x = u64::from_ne_bytes((&*d).try_into().unwrap())
            ^ u64::from_ne_bytes(s.try_into().unwrap());
        d.copy_from_slice(&x.to_ne_bytes());
    }
    for (d, s) in dst_tail.iter_mut().zip(src_tail) {
        *d ^= *s;
    }
}

/// Retained byte-at-a-time reference kernel.
///
/// This is the seed implementation of [`xor_into`], kept as the baseline the
/// bench harness measures the word-wide kernel against and the oracle the
/// equivalence tests compare it to. The `black_box` pins each byte to a
/// genuine one-byte-per-operation schedule — without it LLVM auto-vectorises
/// this loop too and the baseline stops being scalar.
pub fn scalar_xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "scalar_xor_into requires equal-length slices"
    );
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= std::hint::black_box(*s);
    }
}

/// XOR all of `sources` together into a freshly allocated buffer of length
/// `len`. Returns the buffer and the number of byte-XOR operations performed.
///
/// Every source must have length `len`; lengths are validated once up front
/// so the inner loop runs assert-free, and the output buffer is the only
/// allocation.
pub fn xor_many(len: usize, sources: &[&[u8]]) -> (Vec<u8>, u64) {
    for (i, src) in sources.iter().enumerate() {
        assert_eq!(
            src.len(),
            len,
            "xor_many source {i} has length {} but {len} was requested",
            src.len()
        );
    }
    let mut out = vec![0u8; len];
    for src in sources {
        xor_into_unchecked(&mut out, src);
    }
    (out, sources.len() as u64 * len as u64)
}

/// Returns true if every byte of `buf` is zero, checking eight bytes per step.
#[inline]
pub fn is_zero(buf: &[u8]) -> bool {
    let mut words = buf.chunks_exact(WORD);
    words.all(|w| u64::from_ne_bytes(w.try_into().unwrap()) == 0)
        && words.remainder().iter().all(|&b| b == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_into_basic() {
        let mut a = vec![0b1010_1010u8; 16];
        let b = vec![0b0110_0110u8; 16];
        xor_into(&mut a, &b);
        assert!(a.iter().all(|&x| x == 0b1100_1100));
    }

    #[test]
    fn xor_is_involution() {
        let orig: Vec<u8> = (0..64).map(|i| i as u8).collect();
        let mask: Vec<u8> = (0..64).map(|i| (i * 7 + 3) as u8).collect();
        let mut buf = orig.clone();
        xor_into(&mut buf, &mask);
        xor_into(&mut buf, &mask);
        assert_eq!(buf, orig);
    }

    #[test]
    fn word_wide_matches_scalar_on_all_small_lengths() {
        // Cover every tail size around the 8-byte lane boundary, including
        // lengths below one lane.
        for len in 0..=129usize {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let mut fast: Vec<u8> = (0..len).map(|i| (i * 13 + 5) as u8).collect();
            let mut slow = fast.clone();
            xor_into(&mut fast, &src);
            scalar_xor_into(&mut slow, &src);
            assert_eq!(fast, slow, "len = {len}");
        }
    }

    #[test]
    fn xor_many_counts_ops() {
        let a = vec![1u8; 8];
        let b = vec![2u8; 8];
        let c = vec![4u8; 8];
        let (out, ops) = xor_many(8, &[&a, &b, &c]);
        assert_eq!(ops, 24);
        assert!(out.iter().all(|&x| x == 7));
    }

    #[test]
    #[should_panic]
    fn xor_into_length_mismatch_panics() {
        let mut a = vec![0u8; 4];
        let b = vec![0u8; 5];
        xor_into(&mut a, &b);
    }

    #[test]
    #[should_panic]
    fn xor_many_length_mismatch_panics() {
        let a = vec![0u8; 4];
        let b = vec![0u8; 5];
        xor_many(4, &[&a, &b]);
    }

    #[test]
    fn is_zero_detects_nonzero() {
        assert!(is_zero(&[0, 0, 0]));
        assert!(!is_zero(&[0, 1, 0]));
        assert!(is_zero(&[]));
        // Word-sized and word-straddling cases.
        assert!(is_zero(&[0u8; 64]));
        let mut buf = vec![0u8; 64];
        for hot in [0usize, 7, 8, 31, 63] {
            buf[hot] = 1;
            assert!(!is_zero(&buf), "hot byte at {hot}");
            buf[hot] = 0;
        }
        let mut tail = vec![0u8; 13];
        tail[12] = 255;
        assert!(!is_zero(&tail));
    }
}
