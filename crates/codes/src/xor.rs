//! Vectorisable XOR helpers shared by all array codes.
//!
//! The paper's array codes (Section 4.1) encode and decode using nothing but
//! binary XOR, so this tiny module is the hot path of the whole storage
//! stack. The loops are written over plain slices so that LLVM auto-vectorises
//! them; the free functions also keep an exact count of byte-XOR operations
//! for the complexity experiments (E10).

/// XOR `src` into `dst` element-wise. Panics if the lengths differ.
#[inline]
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "xor_into requires equal-length slices"
    );
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= *s;
    }
}

/// XOR all of `sources` together into a freshly allocated buffer of length
/// `len`. Returns the buffer and the number of byte-XOR operations performed.
pub fn xor_many(len: usize, sources: &[&[u8]]) -> (Vec<u8>, u64) {
    let mut out = vec![0u8; len];
    let mut ops = 0u64;
    for src in sources {
        xor_into(&mut out, src);
        ops += len as u64;
    }
    (out, ops)
}

/// Returns true if every byte of `buf` is zero.
#[inline]
pub fn is_zero(buf: &[u8]) -> bool {
    buf.iter().all(|&b| b == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_into_basic() {
        let mut a = vec![0b1010_1010u8; 16];
        let b = vec![0b0110_0110u8; 16];
        xor_into(&mut a, &b);
        assert!(a.iter().all(|&x| x == 0b1100_1100));
    }

    #[test]
    fn xor_is_involution() {
        let orig: Vec<u8> = (0..64).map(|i| i as u8).collect();
        let mask: Vec<u8> = (0..64).map(|i| (i * 7 + 3) as u8).collect();
        let mut buf = orig.clone();
        xor_into(&mut buf, &mask);
        xor_into(&mut buf, &mask);
        assert_eq!(buf, orig);
    }

    #[test]
    fn xor_many_counts_ops() {
        let a = vec![1u8; 8];
        let b = vec![2u8; 8];
        let c = vec![4u8; 8];
        let (out, ops) = xor_many(8, &[&a, &b, &c]);
        assert_eq!(ops, 24);
        assert!(out.iter().all(|&x| x == 7));
    }

    #[test]
    #[should_panic]
    fn xor_into_length_mismatch_panics() {
        let mut a = vec![0u8; 4];
        let b = vec![0u8; 5];
        xor_into(&mut a, &b);
    }

    #[test]
    fn is_zero_detects_nonzero() {
        assert!(is_zero(&[0, 0, 0]));
        assert!(!is_zero(&[0, 1, 0]));
        assert!(is_zero(&[]));
    }
}
