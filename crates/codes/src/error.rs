//! Error type shared by every code in the crate.

use std::fmt;

/// Errors returned by encode/decode operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// The requested code parameters are not supported (e.g. `n` odd for the
    /// B-Code, or `p` not prime for EVENODD / X-Code).
    UnsupportedParameters {
        /// Human-readable explanation of the constraint that was violated.
        reason: String,
    },
    /// The input data length is not a multiple of the code's data unit.
    BadDataLength {
        /// Length the caller provided.
        got: usize,
        /// Required multiple.
        unit: usize,
    },
    /// The share vector passed to `decode` has the wrong number of entries.
    BadShareCount {
        /// Number of entries provided.
        got: usize,
        /// Number of symbols the code produces (`n`).
        expected: usize,
    },
    /// Shares have inconsistent lengths.
    InconsistentShareLength,
    /// A caller-provided output buffer has the wrong length.
    BadOutputLength {
        /// Length of the buffer the caller provided.
        got: usize,
        /// Exact length required.
        expected: usize,
    },
    /// A share index outside `0..n` was passed (e.g. as a repair target).
    BadShareIndex {
        /// The index the caller provided.
        got: usize,
        /// Number of shares the code produces.
        n: usize,
    },
    /// Not enough surviving shares to reconstruct the data.
    TooManyErasures {
        /// Number of shares still available.
        available: usize,
        /// Minimum number of shares needed (`k`).
        needed: usize,
    },
    /// The surviving shares are sufficient in number but the decoder could
    /// not solve for the missing data (should not happen for MDS codes).
    DecodeFailure {
        /// Explanation of where decoding stalled.
        reason: String,
    },
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::UnsupportedParameters { reason } => {
                write!(f, "unsupported code parameters: {reason}")
            }
            CodeError::BadDataLength { got, unit } => write!(
                f,
                "data length {got} is not a positive multiple of the code unit {unit}"
            ),
            CodeError::BadShareCount { got, expected } => {
                write!(f, "expected {expected} shares, got {got}")
            }
            CodeError::InconsistentShareLength => {
                write!(f, "shares have inconsistent lengths")
            }
            CodeError::BadOutputLength { got, expected } => {
                write!(
                    f,
                    "output buffer is {got} bytes, exactly {expected} required"
                )
            }
            CodeError::BadShareIndex { got, n } => {
                write!(f, "share index {got} out of range for {n} shares")
            }
            CodeError::TooManyErasures { available, needed } => write!(
                f,
                "only {available} shares available but {needed} are needed"
            ),
            CodeError::DecodeFailure { reason } => write!(f, "decode failure: {reason}"),
        }
    }
}

impl std::error::Error for CodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CodeError::TooManyErasures {
            available: 3,
            needed: 4,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('4'));

        let e = CodeError::BadDataLength { got: 7, unit: 12 };
        assert!(e.to_string().contains("12"));
    }
}
