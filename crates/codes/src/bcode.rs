//! The **B-Code**: a lowest-density `(n, n-2)` MDS array code (Xu, Bohossian,
//! Bruck & Wagner, cited as references 55 and 57 in the RAIN paper).
//!
//! Section 4.1 of the RAIN paper presents the `(6, 4)` B-Code of Table 1a as
//! its running example: 12 data pieces `a..f, A..F` are placed in 6 columns of
//! 3 cells (two data cells and one parity cell per column); every parity cell
//! is the XOR of four data cells from *other* columns, every data cell appears
//! in exactly **two** parity equations (the optimal update complexity for a
//! distance-3 code), and any two lost columns can be recovered by following
//! decoding chains (Table 2 and Cases 1–3 of the paper).
//!
//! This module provides:
//!
//! * [`BCode::table_1a`] — the exact `(6, 4)` layout of Table 1a, reconstructed
//!   from the paper's decoding chains (the parity equations of Cases 1–3
//!   uniquely determine the placement, see the unit tests),
//! * [`BCode::new`] — lowest-density `(n, n-2)` codes for general even `n`,
//!   built from a **cyclic offset structure** (the `(6,4)` code is cyclic:
//!   the parity of column `i` is
//!   `X[i+1] ^ X[i+3] ^ x[i+4] ^ x[i+5]`, indices mod 6). For `n != 6` the
//!   constructor searches for offset sets whose layout passes the exhaustive
//!   MDS check of [`ArrayLayout::find_mds_violation`]; the search is
//!   deterministic, so a given `n` always yields the same code,
//! * cell labels matching the paper's `a..f / A..F` notation so the
//!   experiment harness can print Table 1a / 1b verbatim.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::array::{ArrayCode, ArrayLayout, Cell, DecodeTrace};
use crate::error::CodeError;
use crate::metrics::{CodeCost, CostModel};
use crate::share::ShareView;
use crate::traits::{CodeKind, ErasureCode};

/// The lowest-density `(n, n-2)` MDS array code of the paper.
#[derive(Debug, Clone)]
pub struct BCode {
    n: usize,
    /// Per data level, the pair of column offsets (relative to the parity
    /// column) whose cells participate in that parity equation.
    offsets: Vec<(usize, usize)>,
    inner: ArrayCode,
}

impl BCode {
    /// Offsets reproducing the paper's Table 1a `(6, 4)` code.
    ///
    /// Level 0 is the lowercase row (`a..f`), level 1 the uppercase row
    /// (`A..F`). The parity stored in column `i` is
    /// `x[(i+4) % 6] ^ x[(i+5) % 6] ^ X[(i+1) % 6] ^ X[(i+3) % 6]`.
    const TABLE_1A_OFFSETS: [(usize, usize); 2] = [(4, 5), (1, 3)];

    /// Build the exact `(6, 4)` B-Code of Table 1a in the paper.
    pub fn table_1a() -> Self {
        Self::from_offsets(6, Self::TABLE_1A_OFFSETS.to_vec())
            .expect("the published (6,4) layout is valid and MDS")
    }

    /// Build a lowest-density `(n, n-2)` B-Code for even `n >= 4`.
    ///
    /// `n = 6` returns the paper's Table 1a code. Other sizes are found by a
    /// deterministic search over cyclic offset structures; sizes for which the
    /// bounded search finds no MDS layout return
    /// [`CodeError::UnsupportedParameters`]. Cyclic lowest-density layouts
    /// exist for `n = 4, 6, 10` (and, empirically, other `n ≡ 2 (mod 4)`),
    /// but not for `n ≡ 0 (mod 4)`; for unsupported sizes the storage layer
    /// falls back to EVENODD or Reed-Solomon.
    pub fn new(n: usize) -> Result<Self, CodeError> {
        if n < 4 || !n.is_multiple_of(2) {
            return Err(CodeError::UnsupportedParameters {
                reason: format!("the B-Code requires an even n >= 4, got {n}"),
            });
        }
        if n == 6 {
            return Ok(Self::table_1a());
        }
        let offsets = search_offsets(n).ok_or_else(|| CodeError::UnsupportedParameters {
            reason: format!("no cyclic lowest-density MDS layout found for n = {n}"),
        })?;
        Self::from_offsets(n, offsets)
    }

    /// Build a B-Code directly from per-level offset pairs. Exposed so the
    /// experiment harness can report the structure it used; validates the
    /// layout but does **not** re-run the exhaustive MDS check (callers that
    /// supply their own offsets should check [`Self::verify_mds`]).
    pub fn from_offsets(n: usize, offsets: Vec<(usize, usize)>) -> Result<Self, CodeError> {
        if offsets.len() != n / 2 - 1 {
            return Err(CodeError::UnsupportedParameters {
                reason: format!(
                    "expected {} offset pairs for n = {n}, got {}",
                    n / 2 - 1,
                    offsets.len()
                ),
            });
        }
        let layout = cyclic_layout(n, &offsets);
        Ok(BCode {
            n,
            offsets,
            inner: ArrayCode::new(layout)?,
        })
    }

    /// The per-level offset pairs defining the cyclic structure.
    pub fn offsets(&self) -> &[(usize, usize)] {
        &self.offsets
    }

    /// Number of data levels (rows of data cells) per column: `n/2 - 1`.
    pub fn levels(&self) -> usize {
        self.n / 2 - 1
    }

    /// Access the underlying generic array code (layout, tracing decode).
    pub fn array(&self) -> &ArrayCode {
        &self.inner
    }

    /// Decode and return the decoding chains that were followed — the
    /// structure the paper spells out in Cases 1–3 / Table 2.
    pub fn decode_traced(
        &self,
        shares: &[Option<Vec<u8>>],
    ) -> Result<(Vec<u8>, DecodeTrace), CodeError> {
        self.inner.decode_traced(shares)
    }

    /// Exhaustively confirm the MDS property (every `n-2`-subset of columns
    /// suffices). Runs the rank check over all `C(n, 2)` erasure patterns.
    pub fn verify_mds(&self) -> bool {
        self.inner.layout().find_mds_violation().is_none()
    }

    /// Paper-style label of a data cell, matching Table 1a's `a..f / A..F`
    /// notation for `n = 6` and the natural generalisation (`a0..`, `b0..`)
    /// for larger codes: level 0 is lowercase, level 1 uppercase, higher
    /// levels are suffixed with the level number.
    pub fn data_cell_label(&self, cell: usize) -> String {
        let level = cell / self.n;
        let col = cell % self.n;
        let base = (b'a' + (col % 26) as u8) as char;
        match level {
            0 => base.to_string(),
            1 => base.to_ascii_uppercase().to_string(),
            l => format!("{base}{l}"),
        }
    }

    /// Human-readable rendering of the placement scheme, one line per column,
    /// in the same spirit as Table 1a of the paper.
    pub fn placement_table(&self) -> Vec<String> {
        let layout = self.inner.layout();
        (0..self.n)
            .map(|c| {
                let mut cells = Vec::new();
                for cell in &layout.column_cells[c] {
                    match *cell {
                        Cell::Data(d) => cells.push(self.data_cell_label(d)),
                        Cell::Parity(p) => {
                            let terms: Vec<String> = layout.equations[p]
                                .iter()
                                .map(|&d| self.data_cell_label(d))
                                .collect();
                            cells.push(terms.join("+"));
                        }
                    }
                }
                format!("column {}: {}", c + 1, cells.join(" | "))
            })
            .collect()
    }
}

/// Build the cyclic layout for `n` columns from per-level offset pairs.
///
/// Data cell `(level l, column i)` has index `l * n + i`; column `i` stores
/// data cells `(0, i) .. (levels-1, i)` followed by parity cell `i`; parity
/// equation `i` XORs, for each level `l`, the data cells of columns
/// `i + o (mod n)` for both offsets `o` of that level.
fn cyclic_layout(n: usize, offsets: &[(usize, usize)]) -> ArrayLayout {
    let levels = offsets.len();
    let cell = |l: usize, i: usize| l * n + i;
    let mut equations = Vec::with_capacity(n);
    for i in 0..n {
        let mut eq = Vec::with_capacity(2 * levels);
        for (l, &(o1, o2)) in offsets.iter().enumerate() {
            eq.push(cell(l, (i + o1) % n));
            eq.push(cell(l, (i + o2) % n));
        }
        equations.push(eq);
    }
    let column_cells = (0..n)
        .map(|i| {
            let mut col: Vec<Cell> = (0..levels).map(|l| Cell::Data(cell(l, i))).collect();
            col.push(Cell::Parity(i));
            col
        })
        .collect();
    ArrayLayout {
        columns: n,
        k: n - 2,
        column_cells,
        equations,
    }
}

/// Deterministic search for offset pairs giving an MDS layout.
///
/// Offsets must avoid 0 (a parity must not cover its own column, otherwise a
/// single column erasure already couples a parity with its own unknowns and
/// the two-erasure patterns involving that column generically lose rank).
/// For small `n` the search is exhaustive over ordered choices of pairs; for
/// larger `n` it samples pair combinations from a seeded RNG with a bounded
/// number of attempts so construction time stays modest and reproducible.
fn search_offsets(n: usize) -> Option<Vec<(usize, usize)>> {
    let levels = n / 2 - 1;
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for a in 1..n {
        for b in (a + 1)..n {
            pairs.push((a, b));
        }
    }

    let mds = |offsets: &[(usize, usize)]| -> bool {
        cyclic_layout(n, offsets).find_mds_violation().is_none()
    };

    if levels <= 3 {
        // Exhaustive: at most C(n-1, 2)^3 candidates (9261 for n = 8).
        let mut stack = vec![0usize; levels];
        loop {
            let candidate: Vec<(usize, usize)> = stack.iter().map(|&i| pairs[i]).collect();
            if mds(&candidate) {
                return Some(candidate);
            }
            // Advance the mixed-radix counter.
            let mut pos = levels;
            loop {
                if pos == 0 {
                    return None;
                }
                pos -= 1;
                stack[pos] += 1;
                if stack[pos] < pairs.len() {
                    break;
                }
                stack[pos] = 0;
            }
        }
    } else {
        // Randomised but reproducible: the seed depends only on n.
        let mut rng = StdRng::seed_from_u64(0xB0DE_0000 + n as u64);
        const ATTEMPTS: usize = 20_000;
        for _ in 0..ATTEMPTS {
            let candidate: Vec<(usize, usize)> = (0..levels)
                .map(|_| *pairs.choose(&mut rng).expect("pairs is non-empty"))
                .collect();
            if mds(&candidate) {
                return Some(candidate);
            }
        }
        None
    }
}

impl ErasureCode for BCode {
    fn kind(&self) -> CodeKind {
        CodeKind::BCode
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    fn data_len_unit(&self) -> usize {
        self.inner.data_len_unit()
    }

    fn encode_slices(&self, data: &[u8], shares: &mut [&mut [u8]]) -> Result<(), CodeError> {
        self.inner.encode_slices(data, shares)
    }

    fn decode_slices(&self, shares: &ShareView<'_>, out: &mut [u8]) -> Result<(), CodeError> {
        self.inner.decode_slices(shares, out)
    }

    fn repair(
        &self,
        shares: &ShareView<'_>,
        missing: usize,
        out: &mut [u8],
    ) -> Result<(), CodeError> {
        self.inner.repair_slices(shares, missing, out)
    }

    fn cost(&self, data_len: usize) -> CodeCost {
        self.inner.analytic_cost(data_len)
    }
}

impl CostModel for BCode {
    fn analytic_cost(&self, data_len: usize) -> CodeCost {
        self.inner.analytic_cost(data_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;

    /// Helper: encode one bit per data cell so shares can be compared with the
    /// paper's single-bit example.
    fn encode_bits(code: &BCode, bits: &[u8]) -> Vec<Vec<u8>> {
        assert_eq!(bits.len(), code.data_len_unit());
        code.encode(bits).unwrap()
    }

    #[test]
    fn rejects_odd_or_tiny_n() {
        assert!(BCode::new(3).is_err());
        assert!(BCode::new(5).is_err());
        assert!(BCode::new(0).is_err());
        assert!(BCode::new(2).is_err());
    }

    #[test]
    fn table_1a_structure_matches_the_paper() {
        // The paper's decoding chains (Cases 1-3) pin down the six parity
        // equations; written with the paper's labels they are:
        //   col 1: B+D+e+f    col 2: a+C+E+f    col 3: a+b+D+F
        //   col 4: A+b+c+E    col 5: B+c+d+F    col 6: A+C+d+e
        let code = BCode::table_1a();
        assert_eq!(code.n(), 6);
        assert_eq!(code.k(), 4);
        assert_eq!(code.levels(), 2);

        let layout = code.array().layout();
        let labelled_eq = |i: usize| -> Vec<String> {
            let mut terms: Vec<String> = layout.equations[i]
                .iter()
                .map(|&d| code.data_cell_label(d))
                .collect();
            terms.sort();
            terms
        };
        let expect = |terms: &[&str]| -> Vec<String> {
            let mut v: Vec<String> = terms.iter().map(|s| s.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(labelled_eq(0), expect(&["B", "D", "e", "f"]));
        assert_eq!(labelled_eq(1), expect(&["a", "C", "E", "f"]));
        assert_eq!(labelled_eq(2), expect(&["a", "b", "D", "F"]));
        assert_eq!(labelled_eq(3), expect(&["A", "b", "c", "E"]));
        assert_eq!(labelled_eq(4), expect(&["B", "c", "d", "F"]));
        assert_eq!(labelled_eq(5), expect(&["A", "C", "d", "e"]));

        // Column i holds data pieces (x_i, X_i) and parity i.
        for i in 0..6 {
            assert_eq!(
                layout.column_cells[i],
                vec![Cell::Data(i), Cell::Data(6 + i), Cell::Parity(i)]
            );
        }
    }

    #[test]
    fn table_1a_is_mds_and_has_optimal_update_complexity() {
        let code = BCode::table_1a();
        assert!(code.verify_mds());
        let cost = code.cost(code.data_len_unit() * 64);
        // Every data cell appears in exactly two parity equations.
        assert!((cost.update_parities_per_data_cell - 2.0).abs() < 1e-12);
        // Storage overhead n / (n - 2) = 1.5.
        assert!((cost.storage_overhead - 1.5).abs() < 1e-12);
    }

    #[test]
    fn table_1b_numeric_example_round_trips() {
        // The paper's example data: the 12 bits 1 1 1 0 1 0 1 0 1 0 1 0,
        // read as a..f then A..F.
        let code = BCode::table_1a();
        let bits = vec![1u8, 1, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0];
        let shares = encode_bits(&code, &bits);
        assert_eq!(shares.len(), 6);
        // Each column carries the two data bits of that column plus a parity.
        for (i, share) in shares.iter().enumerate() {
            assert_eq!(share.len(), 3);
            assert_eq!(share[0], bits[i], "lowercase bit of column {i}");
            assert_eq!(share[1], bits[6 + i], "uppercase bit of column {i}");
        }
        // The four surviving columns hold exactly 12 bits = |data|, the MDS
        // storage-optimality observation of the paper.
        let surviving_bits = 4 * shares[0].len();
        assert_eq!(surviving_bits, bits.len());
        // And any two erasures recover the original bits.
        let mut partial: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
        partial[0] = None;
        partial[1] = None;
        assert_eq!(code.decode(&partial).unwrap(), bits);
    }

    #[test]
    fn paper_case_1_decoding_chain_recovers_columns_1_and_2() {
        // Case 1 of the paper: columns 1 and 2 (0-indexed: 0 and 1) are lost.
        // The chain recovers A first (from the parity of column 6), then b,
        // then a, then B.
        let code = BCode::table_1a();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let data: Vec<u8> = (0..code.data_len_unit() * 8).map(|_| rng.gen()).collect();
        let shares = code.encode(&data).unwrap();
        let mut partial: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
        partial[0] = None;
        partial[1] = None;
        let (out, trace) = code.decode_traced(&partial).unwrap();
        assert_eq!(out, data);
        assert!(!trace.used_gaussian_fallback, "chains must suffice");
        assert_eq!(trace.chain.len(), 4, "four lost data cells");
        // All four pieces of columns 1 and 2 are recovered, and each is
        // recovered from the same parity column the paper's chain uses:
        //   A from column 6 (A+C+d+e), b from column 4 (A+b+c+E),
        //   a from column 3 (a+b+D+F), B from column 5 (B+c+d+F).
        let mut used: Vec<(String, usize)> = trace
            .chain
            .iter()
            .map(|s| (code.data_cell_label(s.recovered_data_cell), s.parity_column))
            .collect();
        used.sort();
        assert_eq!(
            used,
            vec![
                ("A".to_string(), 5),
                ("B".to_string(), 4),
                ("a".to_string(), 2),
                ("b".to_string(), 3),
            ]
        );
    }

    #[test]
    fn paper_cases_2_and_3_use_pure_chains() {
        let code = BCode::table_1a();
        let data: Vec<u8> = (0..code.data_len_unit() * 4).map(|i| i as u8).collect();
        let shares = code.encode(&data).unwrap();
        for &other in &[2usize, 3] {
            let mut partial: Vec<Option<Vec<u8>>> = shares.iter().cloned().map(Some).collect();
            partial[0] = None;
            partial[other] = None;
            let (out, trace) = code.decode_traced(&partial).unwrap();
            assert_eq!(out, data);
            assert!(!trace.used_gaussian_fallback);
            assert_eq!(trace.chain.len(), 4);
        }
    }

    #[test]
    fn all_two_column_erasures_recover_table_1a() {
        let code = BCode::table_1a();
        let data: Vec<u8> = (0..code.data_len_unit() * 16)
            .map(|i| (i * 37 % 251) as u8)
            .collect();
        let shares = code.encode(&data).unwrap();
        for a in 0..6 {
            for b in (a + 1)..6 {
                let mut partial: Vec<Option<Vec<u8>>> = shares.iter().cloned().map(Some).collect();
                partial[a] = None;
                partial[b] = None;
                assert_eq!(code.decode(&partial).unwrap(), data, "erased {a},{b}");
            }
        }
    }

    #[test]
    fn three_erasures_are_rejected() {
        let code = BCode::table_1a();
        let data = vec![0u8; code.data_len_unit()];
        let shares = code.encode(&data).unwrap();
        let mut partial: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
        partial[0] = None;
        partial[1] = None;
        partial[2] = None;
        assert!(matches!(
            code.decode(&partial),
            Err(CodeError::TooManyErasures { .. })
        ));
    }

    #[test]
    fn general_even_sizes_construct_and_are_mds() {
        for n in [4usize, 10] {
            let code = BCode::new(n).unwrap_or_else(|e| panic!("n = {n}: {e}"));
            assert_eq!(code.n(), n);
            assert_eq!(code.k(), n - 2);
            assert!(code.verify_mds(), "B-Code n = {n} failed the MDS check");
            let cost = code.cost(code.data_len_unit() * 8);
            assert!((cost.update_parities_per_data_cell - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn from_offsets_validates_level_count() {
        assert!(BCode::from_offsets(8, vec![(1, 2)]).is_err());
        assert!(BCode::from_offsets(6, vec![(4, 5), (1, 3)]).is_ok());
    }

    #[test]
    fn placement_table_mentions_every_label() {
        let code = BCode::table_1a();
        let table = code.placement_table().join("\n");
        for label in ["a", "b", "c", "d", "e", "f", "A", "B", "C", "D", "E", "F"] {
            assert!(table.contains(label), "missing {label} in\n{table}");
        }
    }

    #[test]
    fn data_cell_labels_cover_higher_levels() {
        let code = BCode::new(10).unwrap();
        // n = 10 has 4 levels; a level-2 cell gets a numeric suffix.
        assert_eq!(code.data_cell_label(2 * 10), "a2");
        assert_eq!(code.data_cell_label(10 + 3), "D");
    }

    #[test]
    fn sizes_without_a_cyclic_layout_report_a_clear_error() {
        // No cyclic lowest-density layout exists for n ≡ 0 (mod 4); the
        // constructor must say so rather than return a non-MDS code.
        let err = BCode::new(8).unwrap_err();
        assert!(matches!(err, CodeError::UnsupportedParameters { .. }));
    }

    proptest! {
        /// Any payload and any pair of erased columns round-trips through the
        /// Table 1a code.
        #[test]
        fn prop_table_1a_two_erasure_roundtrip(
            blocks in 1usize..8,
            seed in any::<u64>(),
            a in 0usize..6,
            gap in 1usize..6,
        ) {
            let b = (a + gap) % 6;
            let code = BCode::table_1a();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let payload: Vec<u8> = (0..12 * blocks).map(|_| rng.gen()).collect();
            let shares = code.encode(&payload).unwrap();
            let mut partial: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
            partial[a] = None;
            partial[b] = None;
            prop_assert_eq!(code.decode(&partial).unwrap(), payload);
        }

        /// The n = 10 code found by the search is MDS for random payloads too
        /// (exercises actual byte decoding, not just the rank check).
        #[test]
        fn prop_n10_two_erasure_roundtrip(
            seed in any::<u64>(),
            a in 0usize..10,
            gap in 1usize..10,
        ) {
            let b = (a + gap) % 10;
            let code = BCode::new(10).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let data: Vec<u8> = (0..code.data_len_unit() * 2).map(|_| rng.gen()).collect();
            let shares = code.encode(&data).unwrap();
            let mut partial: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
            partial[a] = None;
            partial[b] = None;
            prop_assert_eq!(code.decode(&partial).unwrap(), data);
        }
    }
}
