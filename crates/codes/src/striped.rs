//! [`StripedCodec`]: parallel encoding/decoding of large blocks.
//!
//! The XOR and GF(256) kernels are embarrassingly parallel over disjoint
//! byte lanes, so a large block can be split into fixed-size **stripes**
//! that are encoded/decoded/repaired independently on worker threads. A
//! stripe of the input maps to one contiguous chunk of every share:
//!
//! ```text
//! data    |— stripe 0 —|— stripe 1 —|— stripe 2 (short) —|
//! share i |— chunk 0  —|— chunk 1  —|— chunk 2 (short)  —|
//! ```
//!
//! Within one stripe the inner code's share format is unchanged, but the
//! concatenation makes the overall share layout **stripe-dependent**: writer
//! and reader must use the same `StripedCodec` configuration (they always do
//! in the storage layer, where the codec is fixed per store). The worker
//! count, by contrast, is pure scheduling — any number of workers produces
//! bit-identical shares (with one worker the stripes run as a sequential
//! loop on the calling thread). Blocks no larger than one stripe go
//! straight to the inner code.
//!
//! Threads come from [`std::thread::scope`]; nothing is spawned for small
//! inputs, and stripes are distributed round-robin so a short final stripe
//! doesn't serialise the run.

use std::sync::Arc;

use crate::error::CodeError;
use crate::metrics::CodeCost;
use crate::share::ShareView;
use crate::traits::{validate_decode_out, validate_encode_cols, CodeKind, ErasureCode};

/// Wraps any [`ErasureCode`] and processes large blocks as parallel stripes.
#[derive(Clone)]
pub struct StripedCodec {
    inner: Arc<dyn ErasureCode>,
    stripe_data_len: usize,
    workers: usize,
}

impl StripedCodec {
    /// Wrap `inner`, splitting inputs into stripes of `stripe_data_len`
    /// bytes processed by up to `workers` threads. The stripe length must
    /// be a positive multiple of the inner code's `data_len_unit`.
    pub fn new(
        inner: Arc<dyn ErasureCode>,
        stripe_data_len: usize,
        workers: usize,
    ) -> Result<Self, CodeError> {
        let unit = inner.data_len_unit();
        if stripe_data_len == 0
            || !stripe_data_len.is_multiple_of(unit)
            || !stripe_data_len.is_multiple_of(inner.k())
        {
            return Err(CodeError::UnsupportedParameters {
                reason: format!(
                    "stripe length {stripe_data_len} must be a positive multiple of the \
                     code's data unit {unit}"
                ),
            });
        }
        Ok(StripedCodec {
            inner,
            stripe_data_len,
            workers: workers.max(1),
        })
    }

    /// Like [`StripedCodec::new`] with one worker per available CPU.
    pub fn with_default_workers(
        inner: Arc<dyn ErasureCode>,
        stripe_data_len: usize,
    ) -> Result<Self, CodeError> {
        let workers = std::thread::available_parallelism()
            .map(|w| w.get())
            .unwrap_or(1);
        Self::new(inner, stripe_data_len, workers)
    }

    /// The wrapped code.
    pub fn inner(&self) -> &Arc<dyn ErasureCode> {
        &self.inner
    }

    /// Stripe length in input-data bytes.
    pub fn stripe_data_len(&self) -> usize {
        self.stripe_data_len
    }

    /// Maximum worker threads used per call.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Stripe length in per-share bytes.
    fn stripe_share_len(&self) -> usize {
        self.stripe_data_len / self.inner.k()
    }

    /// Run `jobs` across up to `self.workers` scoped threads (round-robin),
    /// sequentially when only one worker is warranted. Returns the first
    /// error encountered.
    fn par_run<J, F>(&self, jobs: Vec<J>, f: F) -> Result<(), CodeError>
    where
        J: Send,
        F: Fn(J) -> Result<(), CodeError> + Sync,
    {
        let workers = self.workers.min(jobs.len());
        if workers <= 1 {
            for job in jobs {
                f(job)?;
            }
            return Ok(());
        }
        let mut queues: Vec<Vec<J>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            queues[i % workers].push(job);
        }
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = queues
                .into_iter()
                .map(|queue| {
                    scope.spawn(move || {
                        for job in queue {
                            f(job)?;
                        }
                        Ok(())
                    })
                })
                .collect();
            let mut result = Ok(());
            for handle in handles {
                let joined = handle.join().expect("stripe worker panicked");
                if result.is_ok() {
                    result = joined;
                }
            }
            result
        })
    }
}

impl ErasureCode for StripedCodec {
    fn kind(&self) -> CodeKind {
        self.inner.kind()
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    fn data_len_unit(&self) -> usize {
        self.inner.data_len_unit()
    }

    fn cost(&self, data_len: usize) -> CodeCost {
        self.inner.cost(data_len)
    }

    fn runtime_metrics(&self) -> crate::metrics::CodeMetrics {
        self.inner.runtime_metrics()
    }

    fn is_mds(&self) -> bool {
        self.inner.is_mds()
    }

    fn encode_slices(&self, data: &[u8], shares: &mut [&mut [u8]]) -> Result<(), CodeError> {
        let share_len = self.share_len_for(data.len())?;
        validate_encode_cols(shares, self.n(), share_len)?;
        if data.len() <= self.stripe_data_len {
            return self.inner.encode_slices(data, shares);
        }
        let stripe_share_len = self.stripe_share_len();
        let num_stripes = data.len().div_ceil(self.stripe_data_len);
        let mut stripe_cols: Vec<Vec<&mut [u8]>> = (0..num_stripes)
            .map(|_| Vec::with_capacity(self.n()))
            .collect();
        for share in shares.iter_mut() {
            for (s, chunk) in share.chunks_mut(stripe_share_len).enumerate() {
                stripe_cols[s].push(chunk);
            }
        }
        let jobs: Vec<(&[u8], Vec<&mut [u8]>)> =
            data.chunks(self.stripe_data_len).zip(stripe_cols).collect();
        self.par_run(jobs, |(stripe, mut cols)| {
            self.inner.encode_slices(stripe, &mut cols)
        })
    }

    fn decode_slices(&self, shares: &ShareView<'_>, out: &mut [u8]) -> Result<(), CodeError> {
        let share_len = shares.validate(self.n(), self.k())?;
        validate_decode_out(out.len(), share_len * self.k())?;
        if out.len() <= self.stripe_data_len {
            return self.inner.decode_slices(shares, out);
        }
        let stripe_share_len = self.stripe_share_len();
        let k = self.k();
        let jobs: Vec<(ShareView<'_>, &mut [u8])> = out
            .chunks_mut(self.stripe_data_len)
            .enumerate()
            .map(|(s, chunk)| {
                let view = shares.substripe(s * stripe_share_len, chunk.len() / k);
                (view, chunk)
            })
            .collect();
        self.par_run(jobs, |(view, chunk)| self.inner.decode_slices(&view, chunk))
    }

    fn repair(
        &self,
        shares: &ShareView<'_>,
        missing: usize,
        out: &mut [u8],
    ) -> Result<(), CodeError> {
        // The survivors define the share length `out` must match; check it
        // here so per-stripe sub-views cannot slice out of bounds.
        let share_len = shares.validate_excluding(self.n(), self.k(), missing)?;
        validate_decode_out(out.len(), share_len)?;
        let stripe_share_len = self.stripe_share_len();
        if out.len() <= stripe_share_len {
            return self.inner.repair(shares, missing, out);
        }
        // Drop whatever (possibly stale, possibly differently sized) value
        // sits in the target slot before sub-slicing: the repair contract is
        // that slot `missing` is ignored, and substripe slices every
        // present slot.
        let mut survivors = shares.clone();
        survivors.clear(missing);
        let jobs: Vec<(ShareView<'_>, &mut [u8])> = out
            .chunks_mut(stripe_share_len)
            .enumerate()
            .map(|(s, chunk)| {
                let view = survivors.substripe(s * stripe_share_len, chunk.len());
                (view, chunk)
            })
            .collect();
        self.par_run(jobs, |(view, chunk)| {
            self.inner.repair(&view, missing, chunk)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcode::BCode;
    use crate::reed_solomon::ReedSolomon;
    use crate::share::ShareSet;
    use crate::xcode::XCode;

    fn test_data(code: &dyn ErasureCode, blocks: usize) -> Vec<u8> {
        (0..code.data_len_unit() * blocks)
            .map(|i| (i * 131 + 17) as u8)
            .collect()
    }

    fn codes() -> Vec<Arc<dyn ErasureCode>> {
        vec![
            Arc::new(BCode::table_1a()),
            Arc::new(XCode::new(5).unwrap()),
            Arc::new(ReedSolomon::new(6, 4).unwrap()),
        ]
    }

    #[test]
    fn worker_count_never_changes_the_bytes() {
        for inner in codes() {
            let unit = inner.data_len_unit();
            // 3 full stripes plus a short one.
            let data = test_data(inner.as_ref(), 8 * 3 + 2);
            let sequential = StripedCodec::new(inner.clone(), unit * 8, 1).unwrap();
            let parallel = StripedCodec::new(inner.clone(), unit * 8, 4).unwrap();
            assert_eq!(
                sequential.encode(&data).unwrap(),
                parallel.encode(&data).unwrap(),
                "{:?}",
                inner.kind()
            );
        }
    }

    #[test]
    fn striped_decode_and_repair_round_trip_across_stripes() {
        for inner in codes() {
            let unit = inner.data_len_unit();
            let striped = StripedCodec::new(inner.clone(), unit * 4, 3).unwrap();
            let data = test_data(inner.as_ref(), 4 * 5 + 1);
            let mut set = ShareSet::new();
            striped.encode_into(&data, &mut set).unwrap();

            // Erase the tolerance's worth of shares and decode.
            let m = striped.fault_tolerance();
            let mut view = set.as_view();
            for i in 0..m {
                view.clear(i);
            }
            let mut out = Vec::new();
            striped.decode_into(&view, &mut out).unwrap();
            assert_eq!(out, data, "{:?}", inner.kind());

            // Repair a single lost share.
            let mut view = set.as_view();
            view.clear(1);
            let mut repaired = vec![0u8; set.share_len()];
            striped.repair(&view, 1, &mut repaired).unwrap();
            assert_eq!(repaired, set.share(1), "{:?}", inner.kind());
        }
    }

    #[test]
    fn single_stripe_inputs_take_the_sequential_path() {
        let inner: Arc<dyn ErasureCode> = Arc::new(BCode::table_1a());
        let striped = StripedCodec::new(inner.clone(), inner.data_len_unit() * 64, 4).unwrap();
        let data = test_data(inner.as_ref(), 2);
        assert_eq!(striped.encode(&data).unwrap(), inner.encode(&data).unwrap());
    }

    #[test]
    fn bad_stripe_lengths_are_rejected() {
        let inner: Arc<dyn ErasureCode> = Arc::new(BCode::table_1a());
        assert!(StripedCodec::new(inner.clone(), 0, 4).is_err());
        let unit = inner.data_len_unit();
        assert!(StripedCodec::new(inner, unit + 1, 4).is_err());
    }

    #[test]
    fn repair_ignores_a_stale_value_in_the_missing_slot() {
        // The trait contract: whatever sits in slot `missing` is ignored —
        // including a buffer of a completely different length, which the
        // per-stripe sub-views must not try to slice.
        let inner: Arc<dyn ErasureCode> = Arc::new(BCode::table_1a());
        let striped = StripedCodec::new(inner.clone(), inner.data_len_unit() * 2, 2).unwrap();
        let data = test_data(inner.as_ref(), 8);
        let mut set = ShareSet::new();
        striped.encode_into(&data, &mut set).unwrap();
        let stale = [0xAAu8; 1];
        let mut view = set.as_view();
        view.set(0, &stale);
        let mut out = vec![0u8; set.share_len()];
        striped.repair(&view, 0, &mut out).unwrap();
        assert_eq!(out, set.share(0));
    }

    #[test]
    fn repair_rejects_mismatched_output_length() {
        let inner: Arc<dyn ErasureCode> = Arc::new(BCode::table_1a());
        let striped = StripedCodec::new(inner.clone(), inner.data_len_unit() * 2, 2).unwrap();
        let data = test_data(inner.as_ref(), 8);
        let set = {
            let mut set = ShareSet::new();
            striped.encode_into(&data, &mut set).unwrap();
            set
        };
        let mut view = set.as_view();
        view.clear(0);
        let mut short = vec![0u8; set.share_len() - 1];
        assert!(striped.repair(&view, 0, &mut short).is_err());
    }
}
