//! Baseline redundancy schemes from classical RAID: mirroring and single
//! parity. The paper (Section 1.2) contrasts these "one degree of fault
//! tolerance" options with the array codes; they serve as baselines in the
//! storage and cost experiments.

use crate::array::{ArrayCode, ArrayLayout, Cell};
use crate::error::CodeError;
use crate::metrics::{CodeCost, CostModel};
use crate::share::ShareView;
use crate::traits::{
    validate_data_len, validate_decode_out, validate_encode_cols, CodeKind, ErasureCode,
};

/// RAID-1-style mirroring: every node stores a full copy of the data.
/// Tolerates `n - 1` erasures at a storage overhead of `n`.
#[derive(Debug, Clone)]
pub struct Mirroring {
    copies: usize,
}

impl Mirroring {
    /// Create a mirroring scheme with `copies >= 1` replicas.
    pub fn new(copies: usize) -> Self {
        assert!(copies >= 1, "at least one copy required");
        Mirroring { copies }
    }
}

impl ErasureCode for Mirroring {
    fn kind(&self) -> CodeKind {
        CodeKind::Mirroring
    }

    fn n(&self) -> usize {
        self.copies
    }

    fn k(&self) -> usize {
        1
    }

    fn data_len_unit(&self) -> usize {
        1
    }

    fn encode_slices(&self, data: &[u8], shares: &mut [&mut [u8]]) -> Result<(), CodeError> {
        validate_data_len(data.len(), 1)?;
        validate_encode_cols(shares, self.copies, data.len())?;
        for copy in shares.iter_mut() {
            copy.copy_from_slice(data);
        }
        Ok(())
    }

    fn decode_slices(&self, shares: &ShareView<'_>, out: &mut [u8]) -> Result<(), CodeError> {
        let share_len = shares.validate(self.copies, 1)?;
        validate_decode_out(out.len(), share_len)?;
        let survivor = shares
            .iter()
            .flatten()
            .next()
            .expect("validate guarantees at least one survivor");
        out.copy_from_slice(survivor);
        Ok(())
    }

    fn repair(
        &self,
        shares: &ShareView<'_>,
        missing: usize,
        out: &mut [u8],
    ) -> Result<(), CodeError> {
        let share_len = shares.validate_excluding(self.copies, 1, missing)?;
        validate_decode_out(out.len(), share_len)?;
        let survivor = shares
            .iter()
            .enumerate()
            .find_map(|(i, s)| if i == missing { None } else { s })
            .expect("validate_excluding guarantees a survivor");
        out.copy_from_slice(survivor);
        Ok(())
    }

    fn cost(&self, data_len: usize) -> CodeCost {
        CodeCost {
            data_len,
            // Copying is charged as one "xor-equivalent" per byte per extra copy.
            encode_xor_bytes: (self.copies as u64 - 1) * data_len as u64,
            decode_xor_bytes: 0,
            update_parities_per_data_cell: (self.copies - 1) as f64,
            storage_overhead: self.copies as f64,
        }
    }
}

impl CostModel for Mirroring {
    fn analytic_cost(&self, data_len: usize) -> CodeCost {
        self.cost(data_len)
    }
}

/// RAID-4/5-style single parity: `n - 1` data symbols plus one XOR parity.
/// Tolerates exactly one erasure.
#[derive(Debug, Clone)]
pub struct SingleParity {
    inner: ArrayCode,
}

impl SingleParity {
    /// Create an `(n, n-1)` single-parity code with `n >= 2` symbols.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "single parity needs at least 2 symbols");
        let layout = ArrayLayout {
            columns: n,
            k: n - 1,
            column_cells: (0..n)
                .map(|c| {
                    if c < n - 1 {
                        vec![Cell::Data(c)]
                    } else {
                        vec![Cell::Parity(0)]
                    }
                })
                .collect(),
            equations: vec![(0..n - 1).collect()],
        };
        SingleParity {
            inner: ArrayCode::new(layout).expect("static layout is valid"),
        }
    }
}

impl ErasureCode for SingleParity {
    fn kind(&self) -> CodeKind {
        CodeKind::SingleParity
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    fn data_len_unit(&self) -> usize {
        self.inner.data_len_unit()
    }

    fn encode_slices(&self, data: &[u8], shares: &mut [&mut [u8]]) -> Result<(), CodeError> {
        self.inner.encode_slices(data, shares)
    }

    fn decode_slices(&self, shares: &ShareView<'_>, out: &mut [u8]) -> Result<(), CodeError> {
        self.inner.decode_slices(shares, out)
    }

    fn repair(
        &self,
        shares: &ShareView<'_>,
        missing: usize,
        out: &mut [u8],
    ) -> Result<(), CodeError> {
        self.inner.repair_slices(shares, missing, out)
    }

    fn cost(&self, data_len: usize) -> CodeCost {
        self.inner.analytic_cost(data_len)
    }
}

impl CostModel for SingleParity {
    fn analytic_cost(&self, data_len: usize) -> CodeCost {
        self.inner.analytic_cost(data_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirroring_survives_all_but_one_loss() {
        let code = Mirroring::new(4);
        let data = b"hello RAIN".to_vec();
        let shares = code.encode(&data).unwrap();
        let mut partial: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
        partial[0] = None;
        partial[1] = None;
        partial[3] = None;
        assert_eq!(code.decode(&partial).unwrap(), data);
    }

    #[test]
    fn mirroring_fails_when_everything_is_lost() {
        let code = Mirroring::new(3);
        let partial: Vec<Option<Vec<u8>>> = vec![None, None, None];
        assert!(matches!(
            code.decode(&partial),
            Err(CodeError::TooManyErasures { .. })
        ));
    }

    #[test]
    fn single_parity_recovers_any_single_erasure() {
        let code = SingleParity::new(5);
        let data: Vec<u8> = (0..4 * 7).map(|i| i as u8).collect();
        let shares = code.encode(&data).unwrap();
        for lost in 0..5 {
            let mut partial: Vec<Option<Vec<u8>>> = shares.iter().cloned().map(Some).collect();
            partial[lost] = None;
            assert_eq!(code.decode(&partial).unwrap(), data, "lost column {lost}");
        }
    }

    #[test]
    fn single_parity_cannot_recover_two_erasures() {
        let code = SingleParity::new(5);
        let data: Vec<u8> = (0..4 * 3).map(|i| i as u8).collect();
        let shares = code.encode(&data).unwrap();
        let mut partial: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
        partial[0] = None;
        partial[1] = None;
        assert!(code.decode(&partial).is_err());
    }

    #[test]
    fn storage_overheads_match_definitions() {
        assert!((Mirroring::new(3).cost(100).storage_overhead - 3.0).abs() < 1e-9);
        let sp = SingleParity::new(5);
        assert!((sp.cost(100).storage_overhead - 5.0 / 4.0).abs() < 1e-9);
    }
}
