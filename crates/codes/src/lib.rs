//! # rain-codes — erasure codes for the RAIN storage building block
//!
//! This crate implements the error-control codes described in Section 4 of
//! *"Computing in the RAIN: A Reliable Array of Independent Nodes"*
//! (Bohossian et al., IEEE TPDS 12(2), 2001):
//!
//! * **Array codes** that encode and decode using only XOR operations:
//!   * the **B-Code** (`(n, n-2)` lowest-density MDS code, Table 1a of the
//!     paper, [`bcode`]),
//!   * the **X-Code** (`(p, p-2)` MDS code with optimal encoding, [`xcode`]),
//!   * **EVENODD** (`(p+2, p)` MDS code, [`evenodd`]);
//! * a **Reed-Solomon** baseline over GF(2^8) ([`reed_solomon`]);
//! * trivial baselines used by classical RAID: **mirroring** and
//!   **single parity** ([`replication`]).
//!
//! All XOR-based codes are expressed through a common sparse-equation
//! framework ([`mod@array`]) which provides generic vectorised encoding, a
//! peeling ("decoding chain") decoder matching the description in the paper,
//! a Gaussian-elimination fallback, and exact XOR-operation accounting used
//! by the optimality experiments (E10 in `DESIGN.md`).
//!
//! ## The two-level API
//!
//! Every code implements the [`ErasureCode`] trait, which is layered:
//!
//! * **Buffer core** — [`ErasureCode::encode_into`] writes into a reusable
//!   [`ShareSet`] (one flat backing allocation, reused across calls),
//!   [`ErasureCode::decode_into`] reads a borrowed [`ShareView`] (no share
//!   cloning) into a reusable `Vec`, and [`ErasureCode::repair`]
//!   reconstructs a **single lost share** without round-tripping through the
//!   full data block. Hot paths — the storage layer, node repair, streaming
//!   — live here.
//! * **Convenience layer** — the allocating [`ErasureCode::encode`] /
//!   [`ErasureCode::decode`] (`Vec<Vec<u8>>` / `&[Option<Vec<u8>>]`) are
//!   provided on top for tests, examples, and cold paths. They are default
//!   trait methods, so code written against the old API keeps compiling.
//!
//! Large blocks can be wrapped in a [`StripedCodec`], which splits the
//! input into fixed-size stripes and encodes/decodes/repairs them across
//! worker threads while producing bit-identical shares.
//!
//! Codes are selected from serializable configuration via
//! [`CodeSpec`] + [`build_code`] instead of hard-coded constructors.
//!
//! ## Quick example
//!
//! ```
//! use rain_codes::{bcode::BCode, ErasureCode, ShareSet};
//!
//! let code = BCode::new(6).unwrap();           // the paper's (6,4) code
//! let data = vec![42u8; code.data_len_unit() * 16];
//!
//! // Zero-alloc steady state: the set's backing buffer is reused.
//! let mut shares = ShareSet::new();
//! code.encode_into(&data, &mut shares).unwrap();
//! assert_eq!(shares.n(), 6);
//!
//! // lose any two symbols ...
//! let mut view = shares.as_view();
//! view.clear(0);
//! view.clear(3);
//!
//! // ... and recover the original data from the remaining four.
//! let mut recovered = Vec::new();
//! code.decode_into(&view, &mut recovered).unwrap();
//! assert_eq!(recovered, data);
//!
//! // Or re-derive just the lost share 0 (what node repair needs).
//! let mut lost = vec![0u8; shares.share_len()];
//! code.repair(&view, 0, &mut lost).unwrap();
//! assert_eq!(lost, shares.share(0));
//! ```

#![warn(missing_docs)]

pub mod array;
pub mod bcode;
pub mod error;
pub mod evenodd;
pub mod gf256;
pub mod matrix;
pub mod metrics;
pub mod reed_solomon;
pub mod replication;
pub mod share;
pub mod spec;
pub mod striped;
pub mod traits;
pub mod xcode;
pub mod xor;

pub use array::{ArrayCode, ArrayLayout, Cell, DecodeTrace};
pub use bcode::BCode;
pub use error::CodeError;
pub use evenodd::EvenOdd;
pub use metrics::{CodeCost, CodeMetrics, CostModel};
pub use reed_solomon::ReedSolomon;
pub use replication::{Mirroring, SingleParity};
pub use share::{ShareSet, ShareView};
pub use spec::{build_code, CodeSpec};
pub use striped::StripedCodec;
pub use traits::{CodeKind, ErasureCode};
pub use xcode::XCode;

#[cfg(test)]
mod tests {
    use super::*;

    /// Every code advertised by the crate round-trips with no erasures.
    #[test]
    fn all_codes_roundtrip_no_erasures() {
        let codes: Vec<Box<dyn ErasureCode>> = vec![
            Box::new(BCode::new(6).unwrap()),
            Box::new(XCode::new(5).unwrap()),
            Box::new(EvenOdd::new(5).unwrap()),
            Box::new(ReedSolomon::new(8, 6).unwrap()),
            Box::new(Mirroring::new(3)),
            Box::new(SingleParity::new(5)),
        ];
        for code in codes {
            let unit = code.data_len_unit();
            let data: Vec<u8> = (0..unit * 8).map(|i| (i * 31 % 251) as u8).collect();
            let shares = code.encode(&data).unwrap();
            assert_eq!(shares.len(), code.n());
            let partial: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
            let out = code.decode(&partial).unwrap();
            assert_eq!(out, data, "roundtrip failed for {:?}", code.kind());
        }
    }
}
