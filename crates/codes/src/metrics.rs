//! Cost accounting for the code-complexity experiments.
//!
//! Section 4.1 of the paper claims that the B-Code and X-Code are *optimal*
//! in the number of encoding/decoding operations and in the number of parity
//! updates per small write, compared to other MDS schemes. This module
//! provides the analytic cost model used by experiment E10 to reproduce that
//! comparison; the workspace bench harness (`cargo run -p bench --release`)
//! measures the same quantities in wall time and writes them to
//! `BENCH_codes.json`.

use serde::{Deserialize, Serialize};

/// Analytic cost of using a code on a block of a given size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodeCost {
    /// Total bytes of original data the cost refers to.
    pub data_len: usize,
    /// Byte-XOR operations needed to compute all parity from the data
    /// (GF(2^8) multiply-accumulates are counted as XOR-equivalents times
    /// [`CodeCost::GF_MUL_XOR_EQUIVALENT`] for Reed-Solomon).
    pub encode_xor_bytes: u64,
    /// Byte-XOR operations to recover from a worst-case `n - k` erasure.
    pub decode_xor_bytes: u64,
    /// Average number of parity *cells* that must be updated when a single
    /// data cell is modified (the paper's "update complexity"). The optimal
    /// value for an `(n, n-2)` MDS code is 2.
    pub update_parities_per_data_cell: f64,
    /// Storage overhead: total encoded bytes divided by data bytes.
    pub storage_overhead: f64,
}

impl CodeCost {
    /// How many byte-XOR operations a GF(2^8) table-lookup multiply-accumulate
    /// is charged as. A log/exp-table multiply touches ~3 table entries and an
    /// add; 4 is a conventional, slightly conservative equivalence used only
    /// to put Reed-Solomon on the same axis as the XOR-only codes. (The
    /// split-table bulk kernel in [`crate::gf256`] narrows the *measured*
    /// gap — see `BENCH_codes.json` — but the analytic model deliberately
    /// charges the classical per-byte cost the paper argues about.)
    pub const GF_MUL_XOR_EQUIVALENT: u64 = 4;

    /// Encode cost normalised per byte of original data.
    pub fn encode_xors_per_data_byte(&self) -> f64 {
        self.encode_xor_bytes as f64 / self.data_len as f64
    }

    /// Decode cost normalised per byte of original data.
    pub fn decode_xors_per_data_byte(&self) -> f64 {
        self.decode_xor_bytes as f64 / self.data_len as f64
    }
}

/// Trait implemented by codes that can describe their analytic cost without
/// touching data. Kept separate from [`crate::ErasureCode`] so the cost model
/// can also be queried for parameter sweeps without instantiating buffers.
pub trait CostModel {
    /// Analytic cost for `data_len` bytes of original data.
    fn analytic_cost(&self, data_len: usize) -> CodeCost;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalised_costs_divide_by_data_len() {
        let c = CodeCost {
            data_len: 1000,
            encode_xor_bytes: 3000,
            decode_xor_bytes: 1500,
            update_parities_per_data_cell: 2.0,
            storage_overhead: 1.5,
        };
        assert!((c.encode_xors_per_data_byte() - 3.0).abs() < 1e-12);
        assert!((c.decode_xors_per_data_byte() - 1.5).abs() < 1e-12);
    }
}
