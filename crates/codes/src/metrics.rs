//! Cost accounting for the code-complexity experiments.
//!
//! Section 4.1 of the paper claims that the B-Code and X-Code are *optimal*
//! in the number of encoding/decoding operations and in the number of parity
//! updates per small write, compared to other MDS schemes. This module
//! provides the analytic cost model used by experiment E10 to reproduce that
//! comparison; the workspace bench harness (`cargo run -p bench --release`)
//! measures the same quantities in wall time and writes them to
//! `BENCH_codes.json`.

use serde::{Deserialize, Serialize};

/// Analytic cost of using a code on a block of a given size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodeCost {
    /// Total bytes of original data the cost refers to.
    pub data_len: usize,
    /// Byte-XOR operations needed to compute all parity from the data
    /// (GF(2^8) multiply-accumulates are counted as XOR-equivalents times
    /// [`CodeCost::GF_MUL_XOR_EQUIVALENT`] for Reed-Solomon).
    pub encode_xor_bytes: u64,
    /// Byte-XOR operations to recover from a worst-case `n - k` erasure.
    pub decode_xor_bytes: u64,
    /// Average number of parity *cells* that must be updated when a single
    /// data cell is modified (the paper's "update complexity"). The optimal
    /// value for an `(n, n-2)` MDS code is 2.
    pub update_parities_per_data_cell: f64,
    /// Storage overhead: total encoded bytes divided by data bytes.
    pub storage_overhead: f64,
}

impl CodeCost {
    /// The per-object share of this cost when it describes one **coding
    /// group**: `objects` equally sized objects packed into a single
    /// contiguous block and encoded with one `encode_into` call.
    ///
    /// Encode/decode work divides evenly across the packed objects (the
    /// kernels stream over the concatenated block), which is exactly the
    /// amortisation the storage layer's group batching buys: per-call setup
    /// (table preparation, share-set relayout, per-object metadata) is paid
    /// once per *group* instead of once per *object*. Update complexity and
    /// storage overhead are per-cell/relative quantities and are unchanged.
    pub fn amortized_per_object(&self, objects: usize) -> CodeCost {
        assert!(objects >= 1, "a coding group holds at least one object");
        CodeCost {
            data_len: self.data_len / objects,
            encode_xor_bytes: self.encode_xor_bytes / objects as u64,
            decode_xor_bytes: self.decode_xor_bytes / objects as u64,
            update_parities_per_data_cell: self.update_parities_per_data_cell,
            storage_overhead: self.storage_overhead,
        }
    }

    /// How many byte-XOR operations a GF(2^8) table-lookup multiply-accumulate
    /// is charged as. A log/exp-table multiply touches ~3 table entries and an
    /// add; 4 is a conventional, slightly conservative equivalence used only
    /// to put Reed-Solomon on the same axis as the XOR-only codes. (The
    /// split-table bulk kernel in [`crate::gf256`] narrows the *measured*
    /// gap — see `BENCH_codes.json` — but the analytic model deliberately
    /// charges the classical per-byte cost the paper argues about.)
    pub const GF_MUL_XOR_EQUIVALENT: u64 = 4;

    /// Encode cost normalised per byte of original data.
    pub fn encode_xors_per_data_byte(&self) -> f64 {
        self.encode_xor_bytes as f64 / self.data_len as f64
    }

    /// Decode cost normalised per byte of original data.
    pub fn decode_xors_per_data_byte(&self) -> f64 {
        self.decode_xor_bytes as f64 / self.data_len as f64
    }
}

/// Runtime counters for the derived-table caches some codes maintain.
///
/// The ROADMAP's "decode-path tables" item: during a repair storm the same
/// erasure pattern is hit over and over, so [`crate::ReedSolomon`] keeps a
/// small LRU of folded repair coefficient rows keyed by that pattern. This
/// snapshot (see [`crate::ReedSolomon::metrics`]) makes the cache observable
/// — a storm that repeats one pattern should show `repair_row_hits`
/// approaching the number of repairs, while an adversarial pattern mix shows
/// misses and a bounded `repair_rows_cached`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeMetrics {
    /// Repairs served from a cached coefficient row (no matrix inversion).
    pub repair_row_hits: u64,
    /// Repairs that had to invert the survivor submatrix and fold the row.
    pub repair_row_misses: u64,
    /// Coefficient rows currently cached (bounded by the cache capacity).
    pub repair_rows_cached: usize,
}

impl CodeMetrics {
    /// Fraction of repairs served from the cache (`0.0` before any repair).
    pub fn repair_row_hit_rate(&self) -> f64 {
        let total = self.repair_row_hits + self.repair_row_misses;
        if total == 0 {
            0.0
        } else {
            self.repair_row_hits as f64 / total as f64
        }
    }
}

/// Trait implemented by codes that can describe their analytic cost without
/// touching data. Kept separate from [`crate::ErasureCode`] so the cost model
/// can also be queried for parameter sweeps without instantiating buffers.
pub trait CostModel {
    /// Analytic cost for `data_len` bytes of original data.
    fn analytic_cost(&self, data_len: usize) -> CodeCost;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalised_costs_divide_by_data_len() {
        let c = CodeCost {
            data_len: 1000,
            encode_xor_bytes: 3000,
            decode_xor_bytes: 1500,
            update_parities_per_data_cell: 2.0,
            storage_overhead: 1.5,
        };
        assert!((c.encode_xors_per_data_byte() - 3.0).abs() < 1e-12);
        assert!((c.decode_xors_per_data_byte() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn amortized_per_object_divides_work_not_ratios() {
        let group = CodeCost {
            data_len: 8192,
            encode_xor_bytes: 16384,
            decode_xor_bytes: 32768,
            update_parities_per_data_cell: 2.0,
            storage_overhead: 1.5,
        };
        let per_object = group.amortized_per_object(8);
        assert_eq!(per_object.data_len, 1024);
        assert_eq!(per_object.encode_xor_bytes, 2048);
        assert_eq!(per_object.decode_xor_bytes, 4096);
        // Relative quantities do not amortise.
        assert_eq!(per_object.update_parities_per_data_cell, 2.0);
        assert_eq!(per_object.storage_overhead, 1.5);
        // Normalised per-byte cost is unchanged: grouping amortises the
        // per-call setup, not the streaming work.
        assert!(
            (per_object.encode_xors_per_data_byte() - group.encode_xors_per_data_byte()).abs()
                < 1e-12
        );
    }

    #[test]
    fn hit_rate_handles_the_empty_case() {
        let mut m = CodeMetrics::default();
        assert_eq!(m.repair_row_hit_rate(), 0.0);
        m.repair_row_hits = 3;
        m.repair_row_misses = 1;
        assert!((m.repair_row_hit_rate() - 0.75).abs() < 1e-12);
    }
}
