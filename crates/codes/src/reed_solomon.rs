//! Systematic Reed-Solomon erasure code over GF(2^8).
//!
//! The paper cites Reed-Solomon as the classical MDS code (Section 4.1) and
//! the array codes are motivated as XOR-only alternatives to it. This
//! implementation is the baseline for the encoding/decoding-complexity
//! comparison (experiment E10) and an alternative code for the storage layer.
//!
//! Construction: a Vandermonde matrix over GF(2^8) is reduced so that its
//! top `k x k` block is the identity (systematic form); the remaining
//! `n - k` rows generate the parity symbols. Any `k` rows of the resulting
//! generator matrix are linearly independent, so any `k` surviving symbols
//! reconstruct the data by inverting the corresponding `k x k` submatrix.

use crate::error::CodeError;
use crate::gf256::{Gf256, MulTable};
use crate::matrix::GfMatrix;
use crate::metrics::{CodeCost, CostModel};
use crate::share::ShareView;
use crate::traits::{
    validate_data_len, validate_decode_out, validate_encode_cols, CodeKind, ErasureCode,
};

/// A systematic `(n, k)` Reed-Solomon erasure code over GF(2^8).
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    n: usize,
    k: usize,
    gf: Gf256,
    /// `n x k` generator matrix in systematic form.
    generator: GfMatrix,
    /// Split multiply tables for the parity rows of `generator` (rows
    /// `k..n`), one [`MulTable`] per matrix entry, precomputed so encoding
    /// never rebuilds tables (see the [`crate::gf256`] module docs).
    parity_tables: Vec<Vec<MulTable>>,
}

impl ReedSolomon {
    /// Create an `(n, k)` code. Requires `1 <= k < n <= 255`.
    pub fn new(n: usize, k: usize) -> Result<Self, CodeError> {
        if k == 0 || k >= n || n > 255 {
            return Err(CodeError::UnsupportedParameters {
                reason: format!("Reed-Solomon requires 1 <= k < n <= 255, got n={n}, k={k}"),
            });
        }
        let gf = Gf256::new();
        // Start from an n x k Vandermonde matrix and put it in systematic
        // form by right-multiplying with the inverse of its top k x k block.
        let vand = GfMatrix::vandermonde(&gf, n, k);
        let top: Vec<usize> = (0..k).collect();
        let top_inv = vand
            .select_rows(&top)
            .invert(&gf)
            .expect("top block of a Vandermonde matrix over distinct points is invertible");
        let generator = vand.mul(&gf, &top_inv);
        let parity_tables = (k..n)
            .map(|row| {
                (0..k)
                    .map(|col| gf.mul_table(generator.get(row, col)))
                    .collect()
            })
            .collect();
        Ok(ReedSolomon {
            n,
            k,
            gf,
            generator,
            parity_tables,
        })
    }

    /// Access the generator matrix (used by tests).
    pub fn generator(&self) -> &GfMatrix {
        &self.generator
    }
}

impl ErasureCode for ReedSolomon {
    fn kind(&self) -> CodeKind {
        CodeKind::ReedSolomon
    }

    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn data_len_unit(&self) -> usize {
        self.k
    }

    fn encode_slices(&self, data: &[u8], shares: &mut [&mut [u8]]) -> Result<(), CodeError> {
        validate_data_len(data.len(), self.k)?;
        let symbol_len = data.len() / self.k;
        validate_encode_cols(shares, self.n, symbol_len)?;
        let data_symbol = |i: usize| &data[i * symbol_len..(i + 1) * symbol_len];

        // Systematic part: identity rows copy the data straight through.
        for (row, share) in shares.iter_mut().enumerate().take(self.k) {
            share.copy_from_slice(data_symbol(row));
        }
        for (row, tables) in self.parity_tables.iter().enumerate() {
            shares[self.k + row].fill(0);
            for (col, table) in tables.iter().enumerate() {
                table.mul_acc(shares[self.k + row], data_symbol(col));
            }
        }
        Ok(())
    }

    fn decode_slices(&self, shares: &ShareView<'_>, out: &mut [u8]) -> Result<(), CodeError> {
        let symbol_len = shares.validate(self.n, self.k)?;
        validate_decode_out(out.len(), self.k * symbol_len)?;

        // Fast path: all systematic symbols present.
        if (0..self.k).all(|i| shares.share(i).is_some()) {
            for (i, out_chunk) in out.chunks_mut(symbol_len.max(1)).enumerate().take(self.k) {
                out_chunk.copy_from_slice(shares.share(i).expect("checked present"));
            }
            return Ok(());
        }

        // General path: pick any k surviving rows, invert the corresponding
        // submatrix of the generator, and multiply.
        let available: Vec<usize> = (0..self.n).filter(|&i| shares.share(i).is_some()).collect();
        let chosen = &available[..self.k];
        let sub = self.generator.select_rows(chosen);
        let inv = sub
            .invert(&self.gf)
            .ok_or_else(|| CodeError::DecodeFailure {
                reason: "selected generator rows are singular (should be impossible for RS)".into(),
            })?;

        out.fill(0);
        for (data_idx, out_chunk) in out.chunks_mut(symbol_len.max(1)).enumerate().take(self.k) {
            for (j, &row) in chosen.iter().enumerate() {
                let coeff = inv.get(data_idx, j);
                let share = shares.share(row).expect("chosen rows are present");
                self.gf.mul_acc_slice(out_chunk, share, coeff);
            }
        }
        Ok(())
    }

    fn repair(
        &self,
        shares: &ShareView<'_>,
        missing: usize,
        out: &mut [u8],
    ) -> Result<(), CodeError> {
        let symbol_len = shares.validate_excluding(self.n, self.k, missing)?;
        validate_decode_out(out.len(), symbol_len)?;
        let available: Vec<usize> = (0..self.n)
            .filter(|&i| i != missing && shares.share(i).is_some())
            .collect();
        let chosen = &available[..self.k];

        // Fast path: every systematic symbol survives and the target is a
        // parity row — use its precomputed split tables.
        if missing >= self.k && chosen.iter().enumerate().all(|(i, &row)| row == i) {
            out.fill(0);
            for (col, table) in self.parity_tables[missing - self.k].iter().enumerate() {
                table.mul_acc(out, shares.share(col).expect("systematic row present"));
            }
            return Ok(());
        }

        // General path: share_missing = g_missing · data
        //                             = (g_missing · inv) · chosen_shares,
        // so fold the inverted submatrix into ONE coefficient row and apply
        // k multiply-accumulates — not the k·k of a full decode plus the
        // k·(n-k) of a re-encode.
        let sub = self.generator.select_rows(chosen);
        let inv = sub
            .invert(&self.gf)
            .ok_or_else(|| CodeError::DecodeFailure {
                reason: "selected generator rows are singular (should be impossible for RS)".into(),
            })?;
        out.fill(0);
        for (j, &row) in chosen.iter().enumerate() {
            let mut coeff = 0u8;
            for t in 0..self.k {
                coeff ^= self.gf.mul(self.generator.get(missing, t), inv.get(t, j));
            }
            if coeff != 0 {
                let share = shares.share(row).expect("chosen rows are present");
                self.gf.mul_acc_slice(out, share, coeff);
            }
        }
        Ok(())
    }

    fn cost(&self, data_len: usize) -> CodeCost {
        let symbol_len = (data_len / self.k).max(1) as u64;
        let parity_rows = (self.n - self.k) as u64;
        // Each parity symbol byte needs k GF multiply-accumulates.
        let mul_acc = parity_rows * self.k as u64 * symbol_len;
        let encode = mul_acc * CodeCost::GF_MUL_XOR_EQUIVALENT;
        // Worst-case decode re-derives k symbols, each needing k mul-accs.
        let decode = (self.k * self.k) as u64 * symbol_len * CodeCost::GF_MUL_XOR_EQUIVALENT;
        CodeCost {
            data_len,
            encode_xor_bytes: encode,
            decode_xor_bytes: decode,
            update_parities_per_data_cell: (self.n - self.k) as f64,
            storage_overhead: self.n as f64 / self.k as f64,
        }
    }
}

impl CostModel for ReedSolomon {
    fn analytic_cost(&self, data_len: usize) -> CodeCost {
        self.cost(data_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_data(rng: &mut StdRng, len: usize) -> Vec<u8> {
        (0..len).map(|_| rng.gen()).collect()
    }

    #[test]
    fn systematic_prefix_is_the_data() {
        let code = ReedSolomon::new(6, 4).unwrap();
        let data: Vec<u8> = (0..4 * 5).map(|i| i as u8).collect();
        let shares = code.encode(&data).unwrap();
        for i in 0..4 {
            assert_eq!(shares[i], data[i * 5..(i + 1) * 5]);
        }
    }

    #[test]
    fn recovers_from_any_two_erasures_6_4() {
        let code = ReedSolomon::new(6, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let data = random_data(&mut rng, 4 * 64);
        let shares = code.encode(&data).unwrap();
        for a in 0..6 {
            for b in (a + 1)..6 {
                let mut partial: Vec<Option<Vec<u8>>> = shares.iter().cloned().map(Some).collect();
                partial[a] = None;
                partial[b] = None;
                assert_eq!(code.decode(&partial).unwrap(), data, "erased {a},{b}");
            }
        }
    }

    #[test]
    fn recovers_from_any_max_erasure_10_8() {
        let code = ReedSolomon::new(10, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let data = random_data(&mut rng, 8 * 32);
        let shares = code.encode(&data).unwrap();
        for a in 0..10 {
            for b in (a + 1)..10 {
                let mut partial: Vec<Option<Vec<u8>>> = shares.iter().cloned().map(Some).collect();
                partial[a] = None;
                partial[b] = None;
                assert_eq!(code.decode(&partial).unwrap(), data);
            }
        }
    }

    #[test]
    fn repair_matches_encode_for_every_target_and_extra_erasure() {
        let code = ReedSolomon::new(6, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let data = random_data(&mut rng, 4 * 48);
        let shares = code.encode(&data).unwrap();
        for target in 0..6 {
            // Besides the repair target, erase up to one more share so both
            // the systematic fast path and the submatrix path are exercised.
            for extra in 0..6 {
                if extra == target {
                    continue;
                }
                let mut view = ShareView::missing(6);
                for (i, s) in shares.iter().enumerate() {
                    if i != target && i != extra {
                        view.set(i, s);
                    }
                }
                let mut out = vec![0u8; shares[target].len()];
                code.repair(&view, target, &mut out).unwrap();
                assert_eq!(
                    out, shares[target],
                    "target {target}, extra erasure {extra}"
                );
            }
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(ReedSolomon::new(4, 0).is_err());
        assert!(ReedSolomon::new(4, 4).is_err());
        assert!(ReedSolomon::new(300, 4).is_err());
    }

    #[test]
    fn too_many_erasures_is_an_error() {
        let code = ReedSolomon::new(5, 3).unwrap();
        let data = vec![9u8; 3 * 4];
        let shares = code.encode(&data).unwrap();
        let mut partial: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
        partial[0] = None;
        partial[1] = None;
        partial[2] = None;
        assert!(matches!(
            code.decode(&partial),
            Err(CodeError::TooManyErasures { .. })
        ));
    }

    #[test]
    fn cost_is_higher_than_xor_codes_for_same_rate() {
        // Sanity for E10: RS (6,4) should cost more XOR-equivalents per byte
        // than a 2-XOR-per-byte array code.
        let rs = ReedSolomon::new(6, 4).unwrap();
        let cost = rs.cost(4 * 1024);
        assert!(cost.encode_xors_per_data_byte() > 2.0);
    }
}
