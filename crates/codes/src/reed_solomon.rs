//! Systematic Reed-Solomon erasure code over GF(2^8).
//!
//! The paper cites Reed-Solomon as the classical MDS code (Section 4.1) and
//! the array codes are motivated as XOR-only alternatives to it. This
//! implementation is the baseline for the encoding/decoding-complexity
//! comparison (experiment E10) and an alternative code for the storage layer.
//!
//! Construction: a Vandermonde matrix over GF(2^8) is reduced so that its
//! top `k x k` block is the identity (systematic form); the remaining
//! `n - k` rows generate the parity symbols. Any `k` rows of the resulting
//! generator matrix are linearly independent, so any `k` surviving symbols
//! reconstruct the data by inverting the corresponding `k x k` submatrix.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::error::CodeError;
use crate::gf256::{Gf256, MulTable};
use crate::matrix::GfMatrix;
use crate::metrics::{CodeCost, CodeMetrics, CostModel};
use crate::share::ShareView;
use crate::traits::{
    validate_data_len, validate_decode_out, validate_encode_cols, CodeKind, ErasureCode,
};

/// Capacity of the per-code repair coefficient-row cache. A repair storm
/// hits one (or a handful of) erasure patterns over and over; 16 rows cover
/// every single-failure pattern of the `(n, k)` points this workspace uses
/// while keeping the linear-scan LRU trivially cheap.
const REPAIR_ROW_CACHE_CAP: usize = 16;

/// One cached repair row: for the erasure pattern `(missing, chosen)`, the
/// non-zero folded coefficients of `g_missing · inv(G[chosen])`, each with
/// its split multiply tables ready for the bulk kernel.
#[derive(Debug, Clone)]
struct RepairRow {
    missing: usize,
    chosen: Vec<usize>,
    /// `(survivor share index, tables for its folded coefficient)`.
    tables: Vec<(usize, MulTable)>,
}

/// A tiny move-to-back LRU over [`RepairRow`]s. Linear scan: at 16 entries
/// a probe is a handful of compares, far below the matrix inversion it
/// replaces.
#[derive(Debug, Default)]
struct RepairRowCache {
    /// Least recently used first.
    rows: Vec<RepairRow>,
}

/// A systematic `(n, k)` Reed-Solomon erasure code over GF(2^8).
#[derive(Debug)]
pub struct ReedSolomon {
    n: usize,
    k: usize,
    gf: Gf256,
    /// `n x k` generator matrix in systematic form.
    generator: GfMatrix,
    /// Split multiply tables for the parity rows of `generator` (rows
    /// `k..n`), one [`MulTable`] per matrix entry, precomputed so encoding
    /// never rebuilds tables (see the [`crate::gf256`] module docs).
    parity_tables: Vec<Vec<MulTable>>,
    /// LRU of folded repair coefficient rows keyed by erasure pattern (the
    /// ROADMAP "decode-path tables" item, repair-storm case). Interior
    /// mutability because [`ErasureCode::repair`] takes `&self`.
    repair_rows: Mutex<RepairRowCache>,
    /// Repairs served from `repair_rows` without a matrix inversion.
    repair_row_hits: AtomicU64,
    /// Repairs that inverted the survivor submatrix and folded a fresh row.
    repair_row_misses: AtomicU64,
}

impl Clone for ReedSolomon {
    /// Clones share the code, not the cache: the clone starts with an empty
    /// repair-row LRU and zeroed hit/miss counters.
    fn clone(&self) -> Self {
        ReedSolomon {
            n: self.n,
            k: self.k,
            gf: self.gf.clone(),
            generator: self.generator.clone(),
            parity_tables: self.parity_tables.clone(),
            repair_rows: Mutex::new(RepairRowCache::default()),
            repair_row_hits: AtomicU64::new(0),
            repair_row_misses: AtomicU64::new(0),
        }
    }
}

impl ReedSolomon {
    /// Create an `(n, k)` code. Requires `1 <= k < n <= 255`.
    pub fn new(n: usize, k: usize) -> Result<Self, CodeError> {
        if k == 0 || k >= n || n > 255 {
            return Err(CodeError::UnsupportedParameters {
                reason: format!("Reed-Solomon requires 1 <= k < n <= 255, got n={n}, k={k}"),
            });
        }
        let gf = Gf256::new();
        // Start from an n x k Vandermonde matrix and put it in systematic
        // form by right-multiplying with the inverse of its top k x k block.
        let vand = GfMatrix::vandermonde(&gf, n, k);
        let top: Vec<usize> = (0..k).collect();
        let top_inv = vand
            .select_rows(&top)
            .invert(&gf)
            .expect("top block of a Vandermonde matrix over distinct points is invertible");
        let generator = vand.mul(&gf, &top_inv);
        let parity_tables = (k..n)
            .map(|row| {
                (0..k)
                    .map(|col| gf.mul_table(generator.get(row, col)))
                    .collect()
            })
            .collect();
        Ok(ReedSolomon {
            n,
            k,
            gf,
            generator,
            parity_tables,
            repair_rows: Mutex::new(RepairRowCache::default()),
            repair_row_hits: AtomicU64::new(0),
            repair_row_misses: AtomicU64::new(0),
        })
    }

    /// Access the generator matrix (used by tests).
    pub fn generator(&self) -> &GfMatrix {
        &self.generator
    }

    /// Snapshot of the repair-row cache counters (see [`CodeMetrics`]).
    pub fn metrics(&self) -> CodeMetrics {
        CodeMetrics {
            repair_row_hits: self.repair_row_hits.load(Ordering::Relaxed),
            repair_row_misses: self.repair_row_misses.load(Ordering::Relaxed),
            repair_rows_cached: self.repair_rows.lock().expect("cache lock").rows.len(),
        }
    }

    /// Invert the survivor submatrix for `chosen` and fold it with row
    /// `missing` of the generator into one coefficient row, keeping only the
    /// non-zero coefficients with their split tables.
    fn compute_repair_row(
        &self,
        chosen: &[usize],
        missing: usize,
    ) -> Result<Vec<(usize, MulTable)>, CodeError> {
        let sub = self.generator.select_rows(chosen);
        let inv = sub
            .invert(&self.gf)
            .ok_or_else(|| CodeError::DecodeFailure {
                reason: "selected generator rows are singular (should be impossible for RS)".into(),
            })?;
        Ok(chosen
            .iter()
            .enumerate()
            .filter_map(|(j, &row)| {
                let mut coeff = 0u8;
                for t in 0..self.k {
                    coeff ^= self.gf.mul(self.generator.get(missing, t), inv.get(t, j));
                }
                (coeff != 0).then(|| (row, self.gf.mul_table(coeff)))
            })
            .collect())
    }

    /// The folded coefficient row for the erasure pattern `(missing,
    /// chosen)`, from the LRU when the pattern repeats (a repair storm), or
    /// computed, counted, and cached on a miss.
    fn cached_repair_row(
        &self,
        chosen: &[usize],
        missing: usize,
    ) -> Result<Vec<(usize, MulTable)>, CodeError> {
        {
            let mut cache = self.repair_rows.lock().expect("cache lock");
            if let Some(pos) = cache
                .rows
                .iter()
                .position(|r| r.missing == missing && r.chosen == chosen)
            {
                let row = cache.rows.remove(pos);
                let tables = row.tables.clone();
                cache.rows.push(row);
                self.repair_row_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(tables);
            }
        }
        // Invert outside the lock: concurrent striped repairs of different
        // patterns should not serialise on the cache.
        let tables = self.compute_repair_row(chosen, missing)?;
        self.repair_row_misses.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.repair_rows.lock().expect("cache lock");
        let raced = cache
            .rows
            .iter()
            .any(|r| r.missing == missing && r.chosen == chosen);
        if !raced {
            if cache.rows.len() >= REPAIR_ROW_CACHE_CAP {
                cache.rows.remove(0);
            }
            cache.rows.push(RepairRow {
                missing,
                chosen: chosen.to_vec(),
                tables: tables.clone(),
            });
        }
        Ok(tables)
    }
}

impl ErasureCode for ReedSolomon {
    fn kind(&self) -> CodeKind {
        CodeKind::ReedSolomon
    }

    fn runtime_metrics(&self) -> CodeMetrics {
        self.metrics()
    }

    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn data_len_unit(&self) -> usize {
        self.k
    }

    fn encode_slices(&self, data: &[u8], shares: &mut [&mut [u8]]) -> Result<(), CodeError> {
        validate_data_len(data.len(), self.k)?;
        let symbol_len = data.len() / self.k;
        validate_encode_cols(shares, self.n, symbol_len)?;
        let data_symbol = |i: usize| &data[i * symbol_len..(i + 1) * symbol_len];

        // Systematic part: identity rows copy the data straight through.
        for (row, share) in shares.iter_mut().enumerate().take(self.k) {
            share.copy_from_slice(data_symbol(row));
        }
        for (row, tables) in self.parity_tables.iter().enumerate() {
            shares[self.k + row].fill(0);
            for (col, table) in tables.iter().enumerate() {
                table.mul_acc(shares[self.k + row], data_symbol(col));
            }
        }
        Ok(())
    }

    fn decode_slices(&self, shares: &ShareView<'_>, out: &mut [u8]) -> Result<(), CodeError> {
        let symbol_len = shares.validate(self.n, self.k)?;
        validate_decode_out(out.len(), self.k * symbol_len)?;

        // Fast path: all systematic symbols present.
        if (0..self.k).all(|i| shares.share(i).is_some()) {
            for (i, out_chunk) in out.chunks_mut(symbol_len.max(1)).enumerate().take(self.k) {
                out_chunk.copy_from_slice(shares.share(i).expect("checked present"));
            }
            return Ok(());
        }

        // General path: pick any k surviving rows, invert the corresponding
        // submatrix of the generator, and multiply.
        let available: Vec<usize> = (0..self.n).filter(|&i| shares.share(i).is_some()).collect();
        let chosen = &available[..self.k];
        let sub = self.generator.select_rows(chosen);
        let inv = sub
            .invert(&self.gf)
            .ok_or_else(|| CodeError::DecodeFailure {
                reason: "selected generator rows are singular (should be impossible for RS)".into(),
            })?;

        out.fill(0);
        for (data_idx, out_chunk) in out.chunks_mut(symbol_len.max(1)).enumerate().take(self.k) {
            for (j, &row) in chosen.iter().enumerate() {
                let coeff = inv.get(data_idx, j);
                let share = shares.share(row).expect("chosen rows are present");
                self.gf.mul_acc_slice(out_chunk, share, coeff);
            }
        }
        Ok(())
    }

    fn repair(
        &self,
        shares: &ShareView<'_>,
        missing: usize,
        out: &mut [u8],
    ) -> Result<(), CodeError> {
        let symbol_len = shares.validate_excluding(self.n, self.k, missing)?;
        validate_decode_out(out.len(), symbol_len)?;
        let available: Vec<usize> = (0..self.n)
            .filter(|&i| i != missing && shares.share(i).is_some())
            .collect();
        let chosen = &available[..self.k];

        // Fast path: every systematic symbol survives and the target is a
        // parity row — use its precomputed split tables.
        if missing >= self.k && chosen.iter().enumerate().all(|(i, &row)| row == i) {
            out.fill(0);
            for (col, table) in self.parity_tables[missing - self.k].iter().enumerate() {
                table.mul_acc(out, shares.share(col).expect("systematic row present"));
            }
            return Ok(());
        }

        // General path: share_missing = g_missing · data
        //                             = (g_missing · inv) · chosen_shares,
        // so fold the inverted submatrix into ONE coefficient row and apply
        // k multiply-accumulates — not the k·k of a full decode plus the
        // k·(n-k) of a re-encode. The folded row (with split tables) is
        // served from the LRU when the erasure pattern repeats, so a repair
        // storm pays the inversion once, not once per object or group.
        let row_tables = self.cached_repair_row(chosen, missing)?;
        out.fill(0);
        for (row, table) in &row_tables {
            let share = shares.share(*row).expect("chosen rows are present");
            table.mul_acc(out, share);
        }
        Ok(())
    }

    fn cost(&self, data_len: usize) -> CodeCost {
        let symbol_len = (data_len / self.k).max(1) as u64;
        let parity_rows = (self.n - self.k) as u64;
        // Each parity symbol byte needs k GF multiply-accumulates.
        let mul_acc = parity_rows * self.k as u64 * symbol_len;
        let encode = mul_acc * CodeCost::GF_MUL_XOR_EQUIVALENT;
        // Worst-case decode re-derives k symbols, each needing k mul-accs.
        let decode = (self.k * self.k) as u64 * symbol_len * CodeCost::GF_MUL_XOR_EQUIVALENT;
        CodeCost {
            data_len,
            encode_xor_bytes: encode,
            decode_xor_bytes: decode,
            update_parities_per_data_cell: (self.n - self.k) as f64,
            storage_overhead: self.n as f64 / self.k as f64,
        }
    }
}

impl CostModel for ReedSolomon {
    fn analytic_cost(&self, data_len: usize) -> CodeCost {
        self.cost(data_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_data(rng: &mut StdRng, len: usize) -> Vec<u8> {
        (0..len).map(|_| rng.gen()).collect()
    }

    #[test]
    fn systematic_prefix_is_the_data() {
        let code = ReedSolomon::new(6, 4).unwrap();
        let data: Vec<u8> = (0..4 * 5).map(|i| i as u8).collect();
        let shares = code.encode(&data).unwrap();
        for i in 0..4 {
            assert_eq!(shares[i], data[i * 5..(i + 1) * 5]);
        }
    }

    #[test]
    fn recovers_from_any_two_erasures_6_4() {
        let code = ReedSolomon::new(6, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let data = random_data(&mut rng, 4 * 64);
        let shares = code.encode(&data).unwrap();
        for a in 0..6 {
            for b in (a + 1)..6 {
                let mut partial: Vec<Option<Vec<u8>>> = shares.iter().cloned().map(Some).collect();
                partial[a] = None;
                partial[b] = None;
                assert_eq!(code.decode(&partial).unwrap(), data, "erased {a},{b}");
            }
        }
    }

    #[test]
    fn recovers_from_any_max_erasure_10_8() {
        let code = ReedSolomon::new(10, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let data = random_data(&mut rng, 8 * 32);
        let shares = code.encode(&data).unwrap();
        for a in 0..10 {
            for b in (a + 1)..10 {
                let mut partial: Vec<Option<Vec<u8>>> = shares.iter().cloned().map(Some).collect();
                partial[a] = None;
                partial[b] = None;
                assert_eq!(code.decode(&partial).unwrap(), data);
            }
        }
    }

    #[test]
    fn repair_matches_encode_for_every_target_and_extra_erasure() {
        let code = ReedSolomon::new(6, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let data = random_data(&mut rng, 4 * 48);
        let shares = code.encode(&data).unwrap();
        for target in 0..6 {
            // Besides the repair target, erase up to one more share so both
            // the systematic fast path and the submatrix path are exercised.
            for extra in 0..6 {
                if extra == target {
                    continue;
                }
                let mut view = ShareView::missing(6);
                for (i, s) in shares.iter().enumerate() {
                    if i != target && i != extra {
                        view.set(i, s);
                    }
                }
                let mut out = vec![0u8; shares[target].len()];
                code.repair(&view, target, &mut out).unwrap();
                assert_eq!(
                    out, shares[target],
                    "target {target}, extra erasure {extra}"
                );
            }
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(ReedSolomon::new(4, 0).is_err());
        assert!(ReedSolomon::new(4, 4).is_err());
        assert!(ReedSolomon::new(300, 4).is_err());
    }

    #[test]
    fn too_many_erasures_is_an_error() {
        let code = ReedSolomon::new(5, 3).unwrap();
        let data = vec![9u8; 3 * 4];
        let shares = code.encode(&data).unwrap();
        let mut partial: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
        partial[0] = None;
        partial[1] = None;
        partial[2] = None;
        assert!(matches!(
            code.decode(&partial),
            Err(CodeError::TooManyErasures { .. })
        ));
    }

    #[test]
    fn repair_storm_hits_the_coefficient_row_cache() {
        let code = ReedSolomon::new(6, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let data = random_data(&mut rng, 4 * 32);
        let shares = code.encode(&data).unwrap();

        // Erase a *systematic* share so the general (cached) path runs.
        let target = 1usize;
        let mut view = ShareView::missing(6);
        for (i, s) in shares.iter().enumerate() {
            if i != target {
                view.set(i, s);
            }
        }
        let mut out = vec![0u8; shares[target].len()];
        for round in 0..50 {
            code.repair(&view, target, &mut out).unwrap();
            assert_eq!(out, shares[target], "round {round}");
        }
        let m = code.metrics();
        assert_eq!(m.repair_row_misses, 1, "one inversion for the storm");
        assert_eq!(m.repair_row_hits, 49);
        assert_eq!(m.repair_rows_cached, 1);
        assert!(m.repair_row_hit_rate() > 0.97);
    }

    #[test]
    fn distinct_erasure_patterns_get_distinct_cached_rows() {
        let code = ReedSolomon::new(6, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(43);
        let data = random_data(&mut rng, 4 * 16);
        let shares = code.encode(&data).unwrap();
        // Repair each systematic share twice; each pattern must miss once
        // then hit, and every result must still match the encoded share.
        for pass in 0..2 {
            for target in 0..4 {
                let mut view = ShareView::missing(6);
                for (i, s) in shares.iter().enumerate() {
                    if i != target {
                        view.set(i, s);
                    }
                }
                let mut out = vec![0u8; shares[target].len()];
                code.repair(&view, target, &mut out).unwrap();
                assert_eq!(out, shares[target], "pass {pass}, target {target}");
            }
        }
        let m = code.metrics();
        assert_eq!(m.repair_row_misses, 4);
        assert_eq!(m.repair_row_hits, 4);
        assert_eq!(m.repair_rows_cached, 4);
    }

    #[test]
    fn repair_row_cache_is_bounded_and_clones_start_cold() {
        // (20, 16): enough distinct single-erasure patterns to overflow the
        // 16-row cache.
        let code = ReedSolomon::new(20, 16).unwrap();
        let mut rng = StdRng::seed_from_u64(47);
        let data = random_data(&mut rng, 16 * 8);
        let shares = code.encode(&data).unwrap();
        for target in 0..code.k() {
            let mut view = ShareView::missing(20);
            for (i, s) in shares.iter().enumerate() {
                if i != target {
                    view.set(i, s);
                }
            }
            let mut out = vec![0u8; shares[target].len()];
            code.repair(&view, target, &mut out).unwrap();
            assert_eq!(out, shares[target]);
        }
        // 16 distinct patterns fit exactly; one more evicts the oldest. An
        // extra erasure alongside the repair target changes the survivor
        // set, so (missing = 0, shares 0 and 1 gone) is a fresh pattern.
        assert_eq!(code.metrics().repair_rows_cached, 16);
        let mut view = ShareView::missing(20);
        for (i, s) in shares.iter().enumerate() {
            if i != 0 && i != 1 {
                view.set(i, s);
            }
        }
        let mut out = vec![0u8; shares[0].len()];
        code.repair(&view, 0, &mut out).unwrap();
        assert_eq!(out, shares[0]);
        let m = code.metrics();
        assert_eq!(m.repair_rows_cached, 16, "LRU stays bounded");
        assert_eq!(m.repair_row_misses, 17);

        let clone = code.clone();
        assert_eq!(clone.metrics(), CodeMetrics::default());
    }

    #[test]
    fn parity_fast_path_bypasses_the_cache() {
        let code = ReedSolomon::new(6, 4).unwrap();
        let data = vec![3u8; 4 * 8];
        let shares = code.encode(&data).unwrap();
        // All systematic shares survive; repairing a parity share uses the
        // precomputed parity tables and must not touch the LRU.
        let mut view = ShareView::missing(6);
        for (i, s) in shares.iter().enumerate() {
            if i != 5 {
                view.set(i, s);
            }
        }
        let mut out = vec![0u8; shares[5].len()];
        code.repair(&view, 5, &mut out).unwrap();
        assert_eq!(out, shares[5]);
        assert_eq!(code.metrics(), CodeMetrics::default());
    }

    #[test]
    fn cost_is_higher_than_xor_codes_for_same_rate() {
        // Sanity for E10: RS (6,4) should cost more XOR-equivalents per byte
        // than a 2-XOR-per-byte array code.
        let rs = ReedSolomon::new(6, 4).unwrap();
        let cost = rs.cost(4 * 1024);
        assert!(cost.encode_xors_per_data_byte() > 2.0);
    }
}
