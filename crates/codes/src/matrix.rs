//! Dense matrices over GF(2^8) and over GF(2), used by the Reed-Solomon code
//! and by the generic Gaussian-elimination decoder of the array-code
//! framework.

use crate::gf256::Gf256;

/// A dense row-major matrix over GF(2^8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GfMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl GfMatrix {
    /// All-zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        GfMatrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Vandermonde matrix with `rows x cols` entries: `m[i][j] = alpha_i^j`
    /// where `alpha_i` are distinct field elements `i`.
    pub fn vandermonde(gf: &Gf256, rows: usize, cols: usize) -> Self {
        let mut m = Self::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, gf.pow(i as u8, j as u32));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u8 {
        self.data[r * self.cols + c]
    }

    /// Write entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: u8) {
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other`.
    pub fn mul(&self, gf: &Gf256, other: &GfMatrix) -> GfMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = GfMatrix::zero(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0 {
                    continue;
                }
                for j in 0..other.cols {
                    let v = out.get(i, j) ^ gf.mul(a, other.get(k, j));
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    /// Build a new matrix from a subset of this matrix's rows.
    pub fn select_rows(&self, rows: &[usize]) -> GfMatrix {
        let mut out = GfMatrix::zero(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            for c in 0..self.cols {
                out.set(i, c, self.get(r, c));
            }
        }
        out
    }

    /// Invert a square matrix via Gauss-Jordan elimination.
    ///
    /// Returns `None` if the matrix is singular.
    pub fn invert(&self, gf: &Gf256) -> Option<GfMatrix> {
        assert_eq!(self.rows, self.cols, "only square matrices can be inverted");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = GfMatrix::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| a.get(r, col) != 0)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalise the pivot row.
            let p = a.get(col, col);
            let pinv = gf.inv(p);
            for c in 0..n {
                a.set(col, c, gf.mul(a.get(col, c), pinv));
                inv.set(col, c, gf.mul(inv.get(col, c), pinv));
            }
            // Eliminate the column from all other rows.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a.get(r, col);
                if factor == 0 {
                    continue;
                }
                for c in 0..n {
                    let v = a.get(r, c) ^ gf.mul(factor, a.get(col, c));
                    a.set(r, c, v);
                    let v = inv.get(r, c) ^ gf.mul(factor, inv.get(col, c));
                    inv.set(r, c, v);
                }
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            let tmp = self.get(a, c);
            self.set(a, c, self.get(b, c));
            self.set(b, c, tmp);
        }
    }
}

/// Solve a sparse GF(2) linear system by Gaussian elimination.
///
/// `equations[i]` is the set of unknown indices appearing in equation `i`
/// (already reduced: known terms must have been folded into `rhs[i]`), and
/// `rhs[i]` is the corresponding right-hand side byte vector. On success the
/// returned vector holds one value buffer per unknown.
///
/// This is the generic fallback decoder for the array codes: the matrices
/// involved are tiny (a handful of unknowns), so the cubic cost is
/// irrelevant next to the byte-vector XOR work on the right-hand sides.
pub fn solve_gf2_sparse(
    num_unknowns: usize,
    equations: &[Vec<usize>],
    rhs: &[Vec<u8>],
) -> Option<Vec<Vec<u8>>> {
    assert_eq!(equations.len(), rhs.len());
    if num_unknowns == 0 {
        return Some(Vec::new());
    }
    let width = rhs.first().map(|r| r.len()).unwrap_or(0);
    // Represent each equation as a bitmask over unknowns (<= 64 unknowns is
    // plenty for every code in this crate; fall back to Vec<bool> otherwise).
    assert!(
        num_unknowns <= 128,
        "solve_gf2_sparse supports at most 128 unknowns"
    );
    let mut masks: Vec<u128> = equations
        .iter()
        .map(|eq| {
            let mut m = 0u128;
            for &u in eq {
                assert!(u < num_unknowns);
                m ^= 1u128 << u;
            }
            m
        })
        .collect();
    let mut values: Vec<Vec<u8>> = rhs.to_vec();

    let mut pivot_of_unknown: Vec<Option<usize>> = vec![None; num_unknowns];
    let mut used_rows = vec![false; masks.len()];

    for (unknown, pivot) in pivot_of_unknown.iter_mut().enumerate() {
        let bit = 1u128 << unknown;
        // Find an unused row containing this unknown.
        let row = (0..masks.len()).find(|&r| !used_rows[r] && masks[r] & bit != 0);
        let row = match row {
            Some(r) => r,
            None => continue, // may still be resolvable if unused unknown
        };
        used_rows[row] = true;
        *pivot = Some(row);
        // Eliminate this unknown from all other rows.
        for r in 0..masks.len() {
            if r != row && masks[r] & bit != 0 {
                masks[r] ^= masks[row];
                let (a, b) = if r < row {
                    let (lo, hi) = values.split_at_mut(row);
                    (&mut lo[r], &hi[0])
                } else {
                    let (lo, hi) = values.split_at_mut(r);
                    (&mut hi[0], &lo[row])
                };
                crate::xor::xor_into(a, b);
            }
        }
    }

    // Back-substitution is implicit (full Gauss-Jordan above); read out each
    // unknown from its pivot row, which must now contain only that unknown.
    let mut out = vec![vec![0u8; width]; num_unknowns];
    for unknown in 0..num_unknowns {
        let row = pivot_of_unknown[unknown]?;
        if masks[row] != 1u128 << unknown {
            // Row still mentions other unknowns: the system was singular.
            return None;
        }
        out[unknown] = values[row].clone();
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_inverts_to_identity() {
        let gf = Gf256::new();
        let id = GfMatrix::identity(5);
        assert_eq!(id.invert(&gf).unwrap(), id);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let gf = Gf256::new();
        // Vandermonde over distinct points is invertible.
        let m = GfMatrix::vandermonde(&gf, 6, 6);
        let inv = m.invert(&gf).expect("vandermonde must be invertible");
        let prod = inv.mul(&gf, &m);
        assert_eq!(prod, GfMatrix::identity(6));
    }

    #[test]
    fn singular_matrix_returns_none() {
        let gf = Gf256::new();
        let mut m = GfMatrix::zero(3, 3);
        // Two identical rows -> singular.
        for c in 0..3 {
            m.set(0, c, c as u8 + 1);
            m.set(1, c, c as u8 + 1);
            m.set(2, c, (c as u8 + 1) * 3);
        }
        assert!(m.invert(&gf).is_none());
    }

    #[test]
    fn select_rows_extracts_submatrix() {
        let gf = Gf256::new();
        let m = GfMatrix::vandermonde(&gf, 5, 3);
        let sub = m.select_rows(&[0, 4]);
        assert_eq!(sub.rows(), 2);
        assert_eq!(sub.row(1), m.row(4));
    }

    #[test]
    fn gf2_solver_solves_simple_chain() {
        // x0 ^ x1 = [1], x1 = [2]  =>  x0 = [3], x1 = [2]
        let eqs = vec![vec![0, 1], vec![1]];
        let rhs = vec![vec![1u8], vec![2u8]];
        let sol = solve_gf2_sparse(2, &eqs, &rhs).unwrap();
        assert_eq!(sol[0], vec![3u8]);
        assert_eq!(sol[1], vec![2u8]);
    }

    #[test]
    fn gf2_solver_detects_underdetermined_system() {
        // x0 ^ x1 = [1] alone cannot pin down both unknowns.
        let eqs = vec![vec![0, 1]];
        let rhs = vec![vec![1u8]];
        assert!(solve_gf2_sparse(2, &eqs, &rhs).is_none());
    }

    #[test]
    fn gf2_solver_handles_redundant_equations() {
        // x0 = [5], x0 = [5] (duplicate), x1 ^ x0 = [7]
        let eqs = vec![vec![0], vec![0], vec![0, 1]];
        let rhs = vec![vec![5u8], vec![5u8], vec![7u8]];
        let sol = solve_gf2_sparse(2, &eqs, &rhs).unwrap();
        assert_eq!(sol[0], vec![5u8]);
        assert_eq!(sol[1], vec![2u8]);
    }
}
