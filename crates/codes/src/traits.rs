//! The common erasure-code interface used by the storage layer.

use crate::error::CodeError;
use crate::metrics::CodeCost;

/// Identifies which family a code object belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CodeKind {
    /// The paper's B-Code: an `(n, n-2)` lowest-density MDS array code.
    BCode,
    /// The X-Code: a `(p, p-2)` MDS array code with optimal encoding.
    XCode,
    /// EVENODD: a `(p+2, p)` MDS array code.
    EvenOdd,
    /// Reed-Solomon over GF(2^8) (MDS, but not XOR-only).
    ReedSolomon,
    /// Full replication (RAID-1 style mirroring).
    Mirroring,
    /// Single parity (RAID-4/5 style), tolerates one erasure.
    SingleParity,
}

/// An `(n, k)` erasure code: `k` symbols of original data are represented by
/// `n` symbols of encoded data, and the original can be recovered from any
/// `k` of them (for the MDS codes in this crate).
///
/// The trait is object-safe so the storage layer can swap codes at runtime.
pub trait ErasureCode: Send + Sync {
    /// Which code family this is.
    fn kind(&self) -> CodeKind;

    /// Total number of encoded symbols produced ("columns" for array codes).
    fn n(&self) -> usize;

    /// Number of symbols sufficient for reconstruction.
    fn k(&self) -> usize;

    /// Number of erasures tolerated (`n - k` for MDS codes).
    fn fault_tolerance(&self) -> usize {
        self.n() - self.k()
    }

    /// The input length must be a positive multiple of this unit (in bytes).
    fn data_len_unit(&self) -> usize;

    /// Encode `data` into `n` equally sized shares.
    fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, CodeError>;

    /// Reconstruct the original data from surviving shares.
    ///
    /// `shares` must have exactly `n` entries; missing symbols are `None`.
    fn decode(&self, shares: &[Option<Vec<u8>>]) -> Result<Vec<u8>, CodeError>;

    /// Analytic cost model for encoding/decoding/updating `data_len` bytes.
    fn cost(&self, data_len: usize) -> CodeCost;

    /// True if the code is Maximum Distance Separable (`m = n - k` erasures
    /// are always recoverable). All codes in this crate except none are MDS,
    /// but the flag lets baselines opt out.
    fn is_mds(&self) -> bool {
        true
    }
}

/// Validate a share vector: right count, consistent lengths, enough
/// survivors. Returns the common share length.
pub(crate) fn validate_shares(
    shares: &[Option<Vec<u8>>],
    n: usize,
    k: usize,
) -> Result<usize, CodeError> {
    if shares.len() != n {
        return Err(CodeError::BadShareCount {
            got: shares.len(),
            expected: n,
        });
    }
    let available: Vec<&Vec<u8>> = shares.iter().flatten().collect();
    if available.len() < k {
        return Err(CodeError::TooManyErasures {
            available: available.len(),
            needed: k,
        });
    }
    let len = available[0].len();
    if available.iter().any(|s| s.len() != len) {
        return Err(CodeError::InconsistentShareLength);
    }
    Ok(len)
}

/// Validate an encode input length against the code's unit.
pub(crate) fn validate_data_len(data_len: usize, unit: usize) -> Result<(), CodeError> {
    if data_len == 0 || !data_len.is_multiple_of(unit) {
        return Err(CodeError::BadDataLength {
            got: data_len,
            unit,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_shares_rejects_bad_count() {
        let shares = vec![Some(vec![0u8; 4]); 3];
        assert!(matches!(
            validate_shares(&shares, 4, 2),
            Err(CodeError::BadShareCount { .. })
        ));
    }

    #[test]
    fn validate_shares_rejects_too_many_erasures() {
        let shares = vec![Some(vec![0u8; 4]), None, None, None];
        assert!(matches!(
            validate_shares(&shares, 4, 2),
            Err(CodeError::TooManyErasures { .. })
        ));
    }

    #[test]
    fn validate_shares_rejects_inconsistent_lengths() {
        let shares = vec![Some(vec![0u8; 4]), Some(vec![0u8; 5]), None, None];
        assert!(matches!(
            validate_shares(&shares, 4, 2),
            Err(CodeError::InconsistentShareLength)
        ));
    }

    #[test]
    fn validate_data_len_enforces_unit() {
        assert!(validate_data_len(24, 12).is_ok());
        assert!(validate_data_len(0, 12).is_err());
        assert!(validate_data_len(13, 12).is_err());
    }
}
