//! The common erasure-code interface used by the storage layer.
//!
//! The trait is layered in two levels:
//!
//! 1. **Buffer core** (required): [`ErasureCode::encode_slices`],
//!    [`ErasureCode::decode_slices`] and [`ErasureCode::repair`] operate on
//!    caller-owned buffers — pre-sized column slices, a borrowed
//!    [`ShareView`], a flat output slice — and never allocate share storage.
//!    [`ErasureCode::encode_into`] / [`ErasureCode::decode_into`] are the
//!    ergonomic entry points at this level: they size a reusable
//!    [`ShareSet`] / output `Vec` for you, so steady-state loops allocate
//!    nothing after the first call.
//! 2. **Convenience layer** (provided): the original allocating
//!    [`ErasureCode::encode`] / [`ErasureCode::decode`] survive as default
//!    methods implemented on top of the core, so downstream code can migrate
//!    incrementally.
//!
//! [`ErasureCode::repair`] reconstructs a **single lost share** directly,
//! without round-tripping through the full data block — the operation node
//! repair actually needs.

use crate::error::CodeError;
use crate::metrics::{CodeCost, CodeMetrics};
use crate::share::{ShareSet, ShareView};

/// Identifies which family a code object belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CodeKind {
    /// The paper's B-Code: an `(n, n-2)` lowest-density MDS array code.
    BCode,
    /// The X-Code: a `(p, p-2)` MDS array code with optimal encoding.
    XCode,
    /// EVENODD: a `(p+2, p)` MDS array code.
    EvenOdd,
    /// Reed-Solomon over GF(2^8) (MDS, but not XOR-only).
    ReedSolomon,
    /// Full replication (RAID-1 style mirroring).
    Mirroring,
    /// Single parity (RAID-4/5 style), tolerates one erasure.
    SingleParity,
}

/// An `(n, k)` erasure code: `k` symbols of original data are represented by
/// `n` symbols of encoded data, and the original can be recovered from any
/// `k` of them (for the MDS codes in this crate).
///
/// The trait is object-safe so the storage layer can swap codes at runtime.
/// See the [module docs](self) for the two API levels.
pub trait ErasureCode: Send + Sync {
    /// Which code family this is.
    fn kind(&self) -> CodeKind;

    /// Total number of encoded symbols produced ("columns" for array codes).
    fn n(&self) -> usize;

    /// Number of symbols sufficient for reconstruction.
    fn k(&self) -> usize;

    /// Number of erasures tolerated (`n - k` for MDS codes).
    fn fault_tolerance(&self) -> usize {
        self.n() - self.k()
    }

    /// The input length must be a positive multiple of this unit (in bytes).
    /// The unit is always a multiple of `k`, so `share_len_for` divides
    /// evenly.
    fn data_len_unit(&self) -> usize;

    /// Analytic cost model for encoding/decoding/updating `data_len` bytes.
    fn cost(&self, data_len: usize) -> CodeCost;

    /// Runtime counters a code implementation accumulates while serving
    /// (e.g. Reed-Solomon's repair-row cache hits). Codes without runtime
    /// state report the all-zero default; wrappers delegate to their inner
    /// code. Telemetry publishers surface these as `codes.*` gauges (see
    /// `DistributedStore::publish_gauges` in `rain-storage`).
    fn runtime_metrics(&self) -> CodeMetrics {
        CodeMetrics::default()
    }

    /// True if the code is Maximum Distance Separable (`m = n - k` erasures
    /// are always recoverable). All codes in this crate except none are MDS,
    /// but the flag lets baselines opt out.
    fn is_mds(&self) -> bool {
        true
    }

    /// The serializable `(kind, n, k)` description of this code; feed it to
    /// [`crate::spec::build_code`] to reconstruct an equivalent instance.
    fn spec(&self) -> crate::spec::CodeSpec {
        crate::spec::CodeSpec {
            kind: self.kind(),
            n: self.n(),
            k: self.k(),
        }
    }

    /// Length in bytes of each encoded share for a `data_len`-byte input.
    fn share_len_for(&self, data_len: usize) -> Result<usize, CodeError> {
        validate_data_len(data_len, self.data_len_unit())?;
        Ok(data_len / self.k())
    }

    // ---- buffer core (required) ------------------------------------------

    /// Encode `data` into `n` pre-sized column slices, each
    /// `share_len_for(data.len())` bytes. Every byte of every slice is
    /// overwritten. This is the lowest-level entry point; most callers want
    /// [`ErasureCode::encode_into`].
    fn encode_slices(&self, data: &[u8], shares: &mut [&mut [u8]]) -> Result<(), CodeError>;

    /// Reconstruct the original data from surviving shares into `out`,
    /// which must be exactly `share_len * k` bytes (fully overwritten).
    /// Most callers want [`ErasureCode::decode_into`].
    fn decode_slices(&self, shares: &ShareView<'_>, out: &mut [u8]) -> Result<(), CodeError>;

    /// Reconstruct the single share `missing` from the surviving shares in
    /// `shares`, writing it to `out` (which must be `share_len` bytes).
    ///
    /// Unlike decode + re-encode, this derives only the lost symbol: array
    /// codes recover just the erased cells and the target column's parities;
    /// Reed-Solomon folds the inverted submatrix into one coefficient row.
    /// Any value present in slot `missing` of the view is ignored.
    fn repair(
        &self,
        shares: &ShareView<'_>,
        missing: usize,
        out: &mut [u8],
    ) -> Result<(), CodeError>;

    // ---- provided buffer layer -------------------------------------------

    /// Encode `data` into a reusable [`ShareSet`]. The set is re-laid out
    /// for this call (allocating only if it grew past its retained
    /// capacity), then fully overwritten.
    fn encode_into(&self, data: &[u8], shares: &mut ShareSet) -> Result<(), CodeError> {
        let share_len = self.share_len_for(data.len())?;
        shares.reset(self.n(), share_len);
        let mut cols = shares.columns_mut();
        self.encode_slices(data, &mut cols)
    }

    /// Reconstruct the original data into a reusable `Vec` (resized, fully
    /// overwritten; steady-state calls reuse its allocation).
    fn decode_into(&self, shares: &ShareView<'_>, out: &mut Vec<u8>) -> Result<(), CodeError> {
        let share_len = shares.validate(self.n(), self.k())?;
        out.resize(share_len * self.k(), 0);
        self.decode_slices(shares, out)
    }

    // ---- allocating convenience layer (legacy API) -----------------------

    /// Encode `data` into `n` freshly allocated shares.
    ///
    /// Convenience wrapper over [`ErasureCode::encode_into`]; hot paths
    /// should hold a [`ShareSet`] and call that directly.
    fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, CodeError> {
        let mut set = ShareSet::new();
        self.encode_into(data, &mut set)?;
        Ok(set.to_vecs())
    }

    /// Reconstruct the original data from surviving shares.
    ///
    /// `shares` must have exactly `n` entries; missing symbols are `None`.
    /// Convenience wrapper over [`ErasureCode::decode_into`].
    fn decode(&self, shares: &[Option<Vec<u8>>]) -> Result<Vec<u8>, CodeError> {
        let view = ShareView::from_options(shares);
        let mut out = Vec::new();
        self.decode_into(&view, &mut out)?;
        Ok(out)
    }
}

/// Validate an encode input length against the code's unit.
pub(crate) fn validate_data_len(data_len: usize, unit: usize) -> Result<(), CodeError> {
    if data_len == 0 || !data_len.is_multiple_of(unit) {
        return Err(CodeError::BadDataLength {
            got: data_len,
            unit,
        });
    }
    Ok(())
}

/// Validate pre-sized encode output columns: `n` slices of `share_len`.
pub(crate) fn validate_encode_cols(
    shares: &[&mut [u8]],
    n: usize,
    share_len: usize,
) -> Result<(), CodeError> {
    if shares.len() != n {
        return Err(CodeError::BadShareCount {
            got: shares.len(),
            expected: n,
        });
    }
    if shares.iter().any(|s| s.len() != share_len) {
        return Err(CodeError::InconsistentShareLength);
    }
    Ok(())
}

/// Validate a caller-provided output slice against the exact required length.
pub(crate) fn validate_decode_out(out_len: usize, expected: usize) -> Result<(), CodeError> {
    if out_len != expected {
        return Err(CodeError::BadOutputLength {
            got: out_len,
            expected,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_data_len_enforces_unit() {
        assert!(validate_data_len(24, 12).is_ok());
        assert!(validate_data_len(0, 12).is_err());
        assert!(validate_data_len(13, 12).is_err());
    }

    #[test]
    fn validate_encode_cols_checks_count_and_lengths() {
        let mut a = vec![0u8; 4];
        let mut b = vec![0u8; 4];
        let mut cols: Vec<&mut [u8]> = vec![&mut a, &mut b];
        assert!(validate_encode_cols(&cols, 2, 4).is_ok());
        assert!(matches!(
            validate_encode_cols(&cols, 3, 4),
            Err(CodeError::BadShareCount { .. })
        ));
        cols.pop();
        let mut c = vec![0u8; 5];
        cols.push(&mut c);
        assert!(matches!(
            validate_encode_cols(&cols, 2, 4),
            Err(CodeError::InconsistentShareLength)
        ));
    }

    #[test]
    fn validate_decode_out_requires_exact_length() {
        assert!(validate_decode_out(16, 16).is_ok());
        assert!(validate_decode_out(15, 16).is_err());
    }
}
