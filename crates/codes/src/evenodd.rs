//! The EVENODD code of Blaum, Brady, Bruck and Menon (cited as reference 8 in the
//! RAIN paper): a `(p+2, p)` MDS array code for prime `p`, tolerating any two
//! column erasures using only XOR operations.
//!
//! Layout: a `(p-1) x (p+2)` array. Columns `0..p` hold data, column `p`
//! holds the horizontal (row) parities and column `p+1` holds the diagonal
//! parities. The diagonal parities all include the "EVENODD adjuster" `S`,
//! the XOR of the cells on the diagonal through the imaginary row `p-1`;
//! in this crate's equation framework `S` is simply expanded into each
//! diagonal-parity equation, which keeps the code inside the generic
//! XOR-equation machinery (and the Gaussian fallback reproduces the
//! classical zig-zag reconstruction implicitly).

use crate::array::{ArrayCode, ArrayLayout, Cell, DecodeTrace};
use crate::error::CodeError;
use crate::metrics::{CodeCost, CostModel};
use crate::share::ShareView;
use crate::traits::{CodeKind, ErasureCode};

/// Check whether `p` is prime (tiny trial division — p is always small here).
pub(crate) fn is_prime(p: usize) -> bool {
    if p < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= p {
        if p.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// The `(p+2, p)` EVENODD code.
#[derive(Debug, Clone)]
pub struct EvenOdd {
    p: usize,
    inner: ArrayCode,
}

impl EvenOdd {
    /// Create an EVENODD code for prime `p >= 3`. The code has `n = p + 2`
    /// columns and tolerates any 2 erasures.
    pub fn new(p: usize) -> Result<Self, CodeError> {
        if !is_prime(p) || p < 3 {
            return Err(CodeError::UnsupportedParameters {
                reason: format!("EVENODD requires a prime p >= 3, got {p}"),
            });
        }
        let rows = p - 1;
        // Data cell index for (row t, data column j), column-major.
        let cell = |t: usize, j: usize| j * rows + t;

        // The adjuster S is the XOR of cells a[p-1-j][j] for j = 1..p-1.
        let s_cells: Vec<usize> = (1..p).map(|j| cell(p - 1 - j, j)).collect();

        let mut equations: Vec<Vec<usize>> = Vec::with_capacity(2 * rows);
        // Row parities: equation t = XOR of row t across data columns.
        for t in 0..rows {
            equations.push((0..p).map(|j| cell(t, j)).collect());
        }
        // Diagonal parities: equation rows + t = S ^ XOR of the diagonal
        // { a[l][j] : (l + j) mod p == t, l < p-1 }.
        for t in 0..rows {
            let mut eq = s_cells.clone();
            for j in 0..p {
                let l = (t + p - j % p) % p;
                if l < rows {
                    eq.push(cell(l, j));
                }
            }
            // No duplicates are possible: the S diagonal is (l + j) mod p ==
            // p - 1 and t != p - 1.
            equations.push(eq);
        }

        let mut column_cells: Vec<Vec<Cell>> = Vec::with_capacity(p + 2);
        for j in 0..p {
            column_cells.push((0..rows).map(|t| Cell::Data(cell(t, j))).collect());
        }
        column_cells.push((0..rows).map(Cell::Parity).collect());
        column_cells.push((0..rows).map(|t| Cell::Parity(rows + t)).collect());

        let layout = ArrayLayout {
            columns: p + 2,
            k: p,
            column_cells,
            equations,
        };
        Ok(EvenOdd {
            p,
            inner: ArrayCode::new(layout)?,
        })
    }

    /// The prime parameter `p`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Access the underlying generic array code (layout, tracing decode).
    pub fn array(&self) -> &ArrayCode {
        &self.inner
    }

    /// Decode and return the decoding chains / fallback information.
    pub fn decode_traced(
        &self,
        shares: &[Option<Vec<u8>>],
    ) -> Result<(Vec<u8>, DecodeTrace), CodeError> {
        self.inner.decode_traced(shares)
    }
}

impl ErasureCode for EvenOdd {
    fn kind(&self) -> CodeKind {
        CodeKind::EvenOdd
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    fn data_len_unit(&self) -> usize {
        self.inner.data_len_unit()
    }

    fn encode_slices(&self, data: &[u8], shares: &mut [&mut [u8]]) -> Result<(), CodeError> {
        self.inner.encode_slices(data, shares)
    }

    fn decode_slices(&self, shares: &ShareView<'_>, out: &mut [u8]) -> Result<(), CodeError> {
        self.inner.decode_slices(shares, out)
    }

    fn repair(
        &self,
        shares: &ShareView<'_>,
        missing: usize,
        out: &mut [u8],
    ) -> Result<(), CodeError> {
        self.inner.repair_slices(shares, missing, out)
    }

    fn cost(&self, data_len: usize) -> CodeCost {
        self.inner.analytic_cost(data_len)
    }
}

impl CostModel for EvenOdd {
    fn analytic_cost(&self, data_len: usize) -> CodeCost {
        self.inner.analytic_cost(data_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn rejects_non_prime_p() {
        assert!(EvenOdd::new(4).is_err());
        assert!(EvenOdd::new(1).is_err());
        assert!(EvenOdd::new(9).is_err());
        assert!(EvenOdd::new(2).is_err());
    }

    #[test]
    fn layout_is_mds_for_small_primes() {
        for p in [3usize, 5, 7] {
            let code = EvenOdd::new(p).unwrap();
            assert!(
                code.array().layout().find_mds_violation().is_none(),
                "EVENODD p={p} is not MDS"
            );
        }
    }

    #[test]
    fn recovers_all_two_column_erasures_p5() {
        let p = 5;
        let code = EvenOdd::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let data: Vec<u8> = (0..code.data_len_unit() * 16).map(|_| rng.gen()).collect();
        let shares = code.encode(&data).unwrap();
        let n = code.n();
        for a in 0..n {
            for b in (a + 1)..n {
                let mut partial: Vec<Option<Vec<u8>>> = shares.iter().cloned().map(Some).collect();
                partial[a] = None;
                partial[b] = None;
                assert_eq!(code.decode(&partial).unwrap(), data, "erased {a},{b}");
            }
        }
    }

    #[test]
    fn single_data_column_erasure_decodes_by_row_parity_chain() {
        let code = EvenOdd::new(5).unwrap();
        let data: Vec<u8> = (0..code.data_len_unit()).map(|i| i as u8).collect();
        let shares = code.encode(&data).unwrap();
        let mut partial: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
        partial[2] = None;
        let (out, trace) = code.decode_traced(&partial).unwrap();
        assert_eq!(out, data);
        assert!(!trace.used_gaussian_fallback);
        assert_eq!(trace.chain.len(), 4); // p - 1 cells recovered by peeling
    }

    #[test]
    fn storage_overhead_matches_p_plus_2_over_p() {
        let code = EvenOdd::new(7).unwrap();
        let cost = code.cost(code.data_len_unit() * 10);
        assert!((cost.storage_overhead - 9.0 / 7.0).abs() < 1e-9);
    }
}
