//! Caller-owned share buffers: [`ShareSet`] and [`ShareView`].
//!
//! The original `ErasureCode` API moved every encoded block through
//! `Vec<Vec<u8>>` (one fresh allocation per share per call) and every decode
//! through `&[Option<Vec<u8>>]` (forcing callers to clone share bytes they
//! already held). These two types replace both:
//!
//! * [`ShareSet`] owns **one flat backing buffer** holding all `n` shares
//!   contiguously. It is reused across calls — `reset` only reallocates when
//!   the layout grows beyond the retained capacity — so a steady-state
//!   encode loop performs zero share allocations.
//! * [`ShareView`] is a borrowed view of up to `n` shares (missing symbols
//!   are `None`), pointing straight into whatever buffers the caller already
//!   owns: a `ShareSet`, storage-node maps, network receive buffers. Decode
//!   and repair read through it without copying a byte.
//!
//! Both are deliberately dumb containers; all coding logic stays in the
//! [`crate::traits::ErasureCode`] implementations.

use crate::error::CodeError;

/// A reusable, flat-backed set of `n` equally sized encoded shares.
///
/// The backing buffer survives [`ShareSet::reset`], so repeated
/// `encode_into` calls of the same (or smaller) layout allocate nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShareSet {
    buf: Vec<u8>,
    n: usize,
    share_len: usize,
}

impl ShareSet {
    /// An empty set with no backing storage; the first `reset` sizes it.
    pub fn new() -> Self {
        ShareSet::default()
    }

    /// A set pre-sized for `n` shares of `share_len` bytes each (zeroed).
    pub fn with_layout(n: usize, share_len: usize) -> Self {
        let mut set = ShareSet::new();
        set.reset(n, share_len);
        set
    }

    /// Re-layout the set for `n` shares of `share_len` bytes, reusing the
    /// backing allocation. Bytes carried over from a previous layout are
    /// unspecified — `encode_into` overwrites every byte.
    pub fn reset(&mut self, n: usize, share_len: usize) {
        self.n = n;
        self.share_len = share_len;
        self.buf.resize(n * share_len, 0);
    }

    /// Number of shares in the current layout.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Length in bytes of each share.
    pub fn share_len(&self) -> usize {
        self.share_len
    }

    /// True if the set holds no shares.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Capacity of the backing buffer in bytes (diagnostic: proves reuse).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Borrow share `i`.
    pub fn share(&self, i: usize) -> &[u8] {
        &self.buf[i * self.share_len..(i + 1) * self.share_len]
    }

    /// Mutably borrow share `i`.
    pub fn share_mut(&mut self, i: usize) -> &mut [u8] {
        &mut self.buf[i * self.share_len..(i + 1) * self.share_len]
    }

    /// Iterate over the shares.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.buf.chunks_exact(self.share_len.max(1)).take(self.n)
    }

    /// Mutable slices of every share at once (disjoint, for encoding).
    pub fn columns_mut(&mut self) -> Vec<&mut [u8]> {
        if self.share_len == 0 {
            return Vec::new();
        }
        self.buf.chunks_exact_mut(self.share_len).collect()
    }

    /// The whole backing buffer (shares concatenated in index order).
    pub fn flat(&self) -> &[u8] {
        &self.buf
    }

    /// A [`ShareView`] with every share present.
    pub fn as_view(&self) -> ShareView<'_> {
        let mut view = ShareView::missing(self.n);
        for i in 0..self.n {
            view.set(i, self.share(i));
        }
        view
    }

    /// Copy out to the legacy `Vec<Vec<u8>>` representation.
    pub fn to_vecs(&self) -> Vec<Vec<u8>> {
        (0..self.n).map(|i| self.share(i).to_vec()).collect()
    }
}

/// A borrowed view of up to `n` shares; missing symbols are `None`.
///
/// Construction is cheap (one pointer-sized slot per share); the share
/// bytes themselves are never copied.
#[derive(Debug, Clone, Default)]
pub struct ShareView<'a> {
    slots: Vec<Option<&'a [u8]>>,
}

impl<'a> ShareView<'a> {
    /// A view of `n` shares, all initially missing.
    pub fn missing(n: usize) -> Self {
        ShareView {
            slots: vec![None; n],
        }
    }

    /// Build a view from the legacy `&[Option<Vec<u8>>]` representation.
    pub fn from_options(shares: &'a [Option<Vec<u8>>]) -> Self {
        ShareView {
            slots: shares.iter().map(|s| s.as_deref()).collect(),
        }
    }

    /// Build a view with every slot present, from one slice per share.
    pub fn from_slices(shares: &[&'a [u8]]) -> Self {
        ShareView {
            slots: shares.iter().map(|s| Some(*s)).collect(),
        }
    }

    /// Mark share `i` present, borrowing its bytes.
    pub fn set(&mut self, i: usize, share: &'a [u8]) {
        self.slots[i] = Some(share);
    }

    /// Mark share `i` missing.
    pub fn clear(&mut self, i: usize) {
        self.slots[i] = None;
    }

    /// Share `i`, if present.
    pub fn share(&self, i: usize) -> Option<&'a [u8]> {
        self.slots.get(i).copied().flatten()
    }

    /// Number of slots (present or missing).
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// Number of present shares.
    pub fn available(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Iterate over the slots in index order.
    pub fn iter(&self) -> impl Iterator<Item = Option<&'a [u8]>> + '_ {
        self.slots.iter().copied()
    }

    /// A view of the byte range `offset..offset + len` of every present
    /// share — the per-stripe sub-view used by `StripedCodec`.
    pub fn substripe(&self, offset: usize, len: usize) -> ShareView<'a> {
        ShareView {
            slots: self
                .slots
                .iter()
                .map(|s| s.map(|b| &b[offset..offset + len]))
                .collect(),
        }
    }

    /// Validate the view against an `(n, k)` code: right slot count, at
    /// least `k` present shares, consistent lengths. Returns the common
    /// share length.
    pub fn validate(&self, n: usize, k: usize) -> Result<usize, CodeError> {
        if self.slots.len() != n {
            return Err(CodeError::BadShareCount {
                got: self.slots.len(),
                expected: n,
            });
        }
        let mut len = None;
        let mut available = 0;
        for share in self.slots.iter().flatten() {
            available += 1;
            match len {
                None => len = Some(share.len()),
                Some(l) if l != share.len() => {
                    return Err(CodeError::InconsistentShareLength);
                }
                Some(_) => {}
            }
        }
        if available < k {
            return Err(CodeError::TooManyErasures {
                available,
                needed: k,
            });
        }
        Ok(len.unwrap_or(0))
    }

    /// Validate the survivors of a single-share repair: right slot count,
    /// at least `k` present shares *outside* slot `missing`, consistent
    /// lengths among them. Slot `missing` is ignored entirely (any stale
    /// value there must not affect the result). Returns the survivors'
    /// common share length.
    pub fn validate_excluding(
        &self,
        n: usize,
        k: usize,
        missing: usize,
    ) -> Result<usize, CodeError> {
        if self.slots.len() != n {
            return Err(CodeError::BadShareCount {
                got: self.slots.len(),
                expected: n,
            });
        }
        if missing >= n {
            return Err(CodeError::BadShareIndex { got: missing, n });
        }
        let mut len = None;
        let mut available = 0;
        for (i, share) in self.slots.iter().enumerate() {
            if i == missing {
                continue;
            }
            let Some(share) = share else { continue };
            available += 1;
            match len {
                None => len = Some(share.len()),
                Some(l) if l != share.len() => {
                    return Err(CodeError::InconsistentShareLength);
                }
                Some(_) => {}
            }
        }
        if available < k {
            return Err(CodeError::TooManyErasures {
                available,
                needed: k,
            });
        }
        Ok(len.unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_set_reset_reuses_capacity() {
        let mut set = ShareSet::with_layout(6, 128);
        set.share_mut(2)[0] = 7;
        let cap = set.capacity();
        assert!(cap >= 6 * 128);
        set.reset(6, 64);
        assert_eq!(set.capacity(), cap, "shrinking must not reallocate");
        set.reset(4, 32);
        assert_eq!(set.capacity(), cap);
        assert_eq!(set.n(), 4);
        assert_eq!(set.share_len(), 32);
        assert_eq!(set.columns_mut().len(), 4);
    }

    #[test]
    fn share_set_shares_are_disjoint_and_ordered() {
        let mut set = ShareSet::with_layout(3, 4);
        for i in 0..3 {
            set.share_mut(i).fill(i as u8 + 1);
        }
        assert_eq!(set.share(0), &[1, 1, 1, 1]);
        assert_eq!(set.share(2), &[3, 3, 3, 3]);
        assert_eq!(set.flat(), &[1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]);
        assert_eq!(set.to_vecs()[1], vec![2u8; 4]);
        assert_eq!(set.iter().count(), 3);
    }

    #[test]
    fn view_validate_matches_legacy_checks() {
        // Wrong slot count.
        let view = ShareView::missing(3);
        assert!(matches!(
            view.validate(4, 2),
            Err(CodeError::BadShareCount { .. })
        ));

        // Too many erasures.
        let a = [0u8; 4];
        let mut view = ShareView::missing(4);
        view.set(0, &a);
        assert!(matches!(
            view.validate(4, 2),
            Err(CodeError::TooManyErasures { .. })
        ));

        // Inconsistent lengths.
        let b = [0u8; 5];
        view.set(1, &b);
        assert!(matches!(
            view.validate(4, 2),
            Err(CodeError::InconsistentShareLength)
        ));

        // Happy path.
        let c = [1u8; 4];
        view.clear(1);
        view.set(2, &c);
        assert_eq!(view.validate(4, 2).unwrap(), 4);
        assert_eq!(view.available(), 2);
        assert_eq!(view.share(2), Some(&c[..]));
        assert_eq!(view.share(1), None);
    }

    #[test]
    fn substripe_narrows_every_present_share() {
        let a: Vec<u8> = (0..8).collect();
        let b: Vec<u8> = (10..18).collect();
        let mut view = ShareView::missing(3);
        view.set(0, &a);
        view.set(2, &b);
        let sub = view.substripe(2, 3);
        assert_eq!(sub.share(0), Some(&a[2..5]));
        assert_eq!(sub.share(1), None);
        assert_eq!(sub.share(2), Some(&b[2..5]));
    }

    #[test]
    fn as_view_marks_everything_present() {
        let set = ShareSet::with_layout(5, 8);
        let view = set.as_view();
        assert_eq!(view.available(), 5);
        assert_eq!(view.validate(5, 3).unwrap(), 8);
    }

    #[test]
    fn from_options_borrows_without_copying() {
        let shares = vec![Some(vec![1u8; 3]), None, Some(vec![2u8; 3])];
        let view = ShareView::from_options(&shares);
        assert_eq!(view.n(), 3);
        assert_eq!(
            view.share(0).unwrap().as_ptr(),
            shares[0].as_ref().unwrap().as_ptr()
        );
        assert_eq!(view.share(1), None);
    }
}
