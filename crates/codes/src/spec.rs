//! Serializable code selection: [`CodeSpec`] + [`build_code`].
//!
//! The storage layer, checkpointing, and the applications used to hard-code
//! concrete constructors (`BCode::table_1a()`, `ReedSolomon::new(9, 6)`, …).
//! A [`CodeSpec`] is the serializable `(kind, n, k)` triple those layers can
//! carry in their configuration instead; [`build_code`] turns it back into a
//! live [`ErasureCode`] object, validating the family-specific parameter
//! constraints (primality, evenness, `k = n - 2`, …) and double-checking
//! that the constructed code advertises exactly the requested `(n, k)`.
//!
//! Round trip: `build_code(code.spec())` reproduces an equivalent code.

use std::fmt;
use std::sync::Arc;

use crate::bcode::BCode;
use crate::error::CodeError;
use crate::evenodd::EvenOdd;
use crate::reed_solomon::ReedSolomon;
use crate::replication::{Mirroring, SingleParity};
use crate::traits::{CodeKind, ErasureCode};
use crate::xcode::XCode;

/// A serializable description of an `(n, k)` erasure code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct CodeSpec {
    /// The code family.
    pub kind: CodeKind,
    /// Total number of encoded symbols.
    pub n: usize,
    /// Number of symbols sufficient for reconstruction.
    pub k: usize,
}

impl CodeSpec {
    /// Shorthand constructor.
    pub fn new(kind: CodeKind, n: usize, k: usize) -> Self {
        CodeSpec { kind, n, k }
    }

    /// The paper's running example: the `(6, 4)` B-Code of Table 1a.
    pub fn bcode_6_4() -> Self {
        CodeSpec::new(CodeKind::BCode, 6, 4)
    }
}

impl fmt::Display for CodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}({},{})", self.kind, self.n, self.k)
    }
}

/// Build a live code object from a spec.
///
/// Every family validates its own parameter constraints; on top of that,
/// the constructed code must advertise exactly the `(n, k)` the spec asked
/// for (catching e.g. an EVENODD spec whose `n != k + 2`).
pub fn build_code(spec: CodeSpec) -> Result<Arc<dyn ErasureCode>, CodeError> {
    let mismatch = |reason: String| CodeError::UnsupportedParameters { reason };
    let code: Arc<dyn ErasureCode> = match spec.kind {
        CodeKind::BCode => Arc::new(BCode::new(spec.n)?),
        CodeKind::XCode => Arc::new(XCode::new(spec.n)?),
        CodeKind::EvenOdd => Arc::new(EvenOdd::new(spec.k)?),
        CodeKind::ReedSolomon => Arc::new(ReedSolomon::new(spec.n, spec.k)?),
        CodeKind::Mirroring => {
            if spec.n < 1 || spec.k != 1 {
                return Err(mismatch(format!(
                    "mirroring requires n >= 1 and k = 1, got {spec}"
                )));
            }
            Arc::new(Mirroring::new(spec.n))
        }
        CodeKind::SingleParity => {
            if spec.n < 2 || spec.k + 1 != spec.n {
                return Err(mismatch(format!(
                    "single parity requires n >= 2 and k = n - 1, got {spec}"
                )));
            }
            Arc::new(SingleParity::new(spec.n))
        }
    };
    if code.n() != spec.n || code.k() != spec.k {
        return Err(mismatch(format!(
            "{spec} does not name a valid code in that family: \
             construction yields ({}, {})",
            code.n(),
            code.k()
        )));
    }
    Ok(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_round_trips_through_its_spec() {
        let specs = [
            CodeSpec::new(CodeKind::BCode, 6, 4),
            CodeSpec::new(CodeKind::XCode, 5, 3),
            CodeSpec::new(CodeKind::EvenOdd, 7, 5),
            CodeSpec::new(CodeKind::ReedSolomon, 9, 6),
            CodeSpec::new(CodeKind::Mirroring, 3, 1),
            CodeSpec::new(CodeKind::SingleParity, 5, 4),
        ];
        for spec in specs {
            let code = build_code(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(code.spec(), spec);
            // The built code actually works.
            let data: Vec<u8> = (0..code.data_len_unit() * 4)
                .map(|i| (i * 37 % 251) as u8)
                .collect();
            let shares = code.encode(&data).unwrap();
            let partial: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
            assert_eq!(code.decode(&partial).unwrap(), data, "{spec}");
        }
    }

    #[test]
    fn mismatched_parameters_are_rejected() {
        // (n, k) pairs that don't exist in the family.
        for bad in [
            CodeSpec::new(CodeKind::BCode, 6, 3),
            CodeSpec::new(CodeKind::XCode, 6, 4), // 6 not prime
            CodeSpec::new(CodeKind::EvenOdd, 8, 5), // n != k + 2
            CodeSpec::new(CodeKind::EvenOdd, 6, 4), // 4 not prime
            CodeSpec::new(CodeKind::ReedSolomon, 4, 4), // k must be < n
            CodeSpec::new(CodeKind::Mirroring, 3, 2), // k must be 1
            CodeSpec::new(CodeKind::SingleParity, 5, 3), // k must be n - 1
            CodeSpec::new(CodeKind::SingleParity, 1, 0),
        ] {
            assert!(build_code(bad).is_err(), "{bad} should not build");
        }
    }

    #[test]
    fn display_names_family_and_parameters() {
        let spec = CodeSpec::bcode_6_4();
        assert_eq!(spec.to_string(), "BCode(6,4)");
    }

    #[test]
    fn rejection_errors_name_the_offending_spec() {
        // Family-constraint rejections carry the family's reason...
        let err = build_code(CodeSpec::new(CodeKind::ReedSolomon, 300, 4))
            .err()
            .expect("n = 300 must be rejected");
        let msg = err.to_string();
        assert!(msg.contains("n=300"), "unhelpful error: {msg}");
        // ...and shape mismatches print the full spec, so a config typo is
        // diagnosable from the error alone.
        for (bad, needle) in [
            (CodeSpec::new(CodeKind::Mirroring, 3, 2), "Mirroring(3,2)"),
            (
                CodeSpec::new(CodeKind::SingleParity, 5, 3),
                "SingleParity(5,3)",
            ),
            (CodeSpec::new(CodeKind::EvenOdd, 9, 5), "EvenOdd(9,5)"),
        ] {
            let msg = build_code(bad)
                .err()
                .unwrap_or_else(|| panic!("{bad} must be rejected"))
                .to_string();
            assert!(msg.contains(needle), "{bad}: unhelpful error: {msg}");
        }
    }

    #[test]
    fn evenodd_spec_with_wrong_n_is_caught_by_the_shape_check() {
        // EvenOdd::new takes k and derives n = k + 2; a spec asking for a
        // different n must not silently build the wrong-shaped code.
        let bad = CodeSpec::new(CodeKind::EvenOdd, 9, 5);
        assert!(build_code(bad).is_err());
        let good = CodeSpec::new(CodeKind::EvenOdd, 7, 5);
        assert_eq!(build_code(good).unwrap().n(), 7);
    }
}
