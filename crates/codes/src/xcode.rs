//! The **X-Code** (Xu & Bruck, cited as reference 56 in the RAIN paper): a `(p, p-2)`
//! MDS array code for prime `p` with *optimal encoding and update complexity*.
//!
//! The codeword is a `p x p` array: rows `0..p-2` hold data, rows `p-2` and
//! `p-1` hold parity. The two parity rows are computed along diagonals of
//! slope +1 and -1 respectively:
//!
//! ```text
//! C[p-2][i] = XOR_{k=0..p-3} C[k][(i + k + 2) mod p]
//! C[p-1][i] = XOR_{k=0..p-3} C[k][(i - k - 2) mod p]
//! ```
//!
//! Because parities live in their own rows (not separate columns), every
//! column contains both data and parity; losing any two columns loses
//! `2(p-2)` data cells, which the surviving `2(p-2)` parity cells on intact
//! diagonals recover by chain decoding. Each data cell appears in exactly two
//! parity equations, the optimal update complexity for distance 3.

use crate::array::{ArrayCode, ArrayLayout, Cell, DecodeTrace};
use crate::error::CodeError;
use crate::evenodd::is_prime;
use crate::metrics::{CodeCost, CostModel};
use crate::share::ShareView;
use crate::traits::{CodeKind, ErasureCode};

/// The `(p, p-2)` X-Code for prime `p >= 3`.
#[derive(Debug, Clone)]
pub struct XCode {
    p: usize,
    inner: ArrayCode,
}

impl XCode {
    /// Create an X-Code for prime `p >= 3`: `n = p` columns, `k = p - 2`.
    pub fn new(p: usize) -> Result<Self, CodeError> {
        if !is_prime(p) || p < 3 {
            return Err(CodeError::UnsupportedParameters {
                reason: format!("the X-Code requires a prime p >= 3, got {p}"),
            });
        }
        let data_rows = p - 2;
        // Data cell index for (row k, column i), row-major so the input
        // buffer reads row by row exactly like the p x (p-2) data array.
        let cell = |k: usize, i: usize| k * p + i;

        let mut equations: Vec<Vec<usize>> = Vec::with_capacity(2 * p);
        // Diagonal parities of slope +1 (stored in row p-2).
        for i in 0..p {
            equations.push((0..data_rows).map(|k| cell(k, (i + k + 2) % p)).collect());
        }
        // Diagonal parities of slope -1 (stored in row p-1).
        for i in 0..p {
            equations.push(
                (0..data_rows)
                    .map(|k| cell(k, (i + p - ((k + 2) % p)) % p))
                    .collect(),
            );
        }

        let column_cells: Vec<Vec<Cell>> = (0..p)
            .map(|i| {
                let mut col: Vec<Cell> = (0..data_rows).map(|k| Cell::Data(cell(k, i))).collect();
                col.push(Cell::Parity(i));
                col.push(Cell::Parity(p + i));
                col
            })
            .collect();

        let layout = ArrayLayout {
            columns: p,
            k: p - 2,
            column_cells,
            equations,
        };
        Ok(XCode {
            p,
            inner: ArrayCode::new(layout)?,
        })
    }

    /// The prime parameter `p` (also the number of columns).
    pub fn p(&self) -> usize {
        self.p
    }

    /// Access the underlying generic array code (layout, tracing decode).
    pub fn array(&self) -> &ArrayCode {
        &self.inner
    }

    /// Decode and return the decoding chains that were followed.
    pub fn decode_traced(
        &self,
        shares: &[Option<Vec<u8>>],
    ) -> Result<(Vec<u8>, DecodeTrace), CodeError> {
        self.inner.decode_traced(shares)
    }

    /// Exhaustively confirm the MDS property over all two-column erasures.
    pub fn verify_mds(&self) -> bool {
        self.inner.layout().find_mds_violation().is_none()
    }
}

impl ErasureCode for XCode {
    fn kind(&self) -> CodeKind {
        CodeKind::XCode
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    fn data_len_unit(&self) -> usize {
        self.inner.data_len_unit()
    }

    fn encode_slices(&self, data: &[u8], shares: &mut [&mut [u8]]) -> Result<(), CodeError> {
        self.inner.encode_slices(data, shares)
    }

    fn decode_slices(&self, shares: &ShareView<'_>, out: &mut [u8]) -> Result<(), CodeError> {
        self.inner.decode_slices(shares, out)
    }

    fn repair(
        &self,
        shares: &ShareView<'_>,
        missing: usize,
        out: &mut [u8],
    ) -> Result<(), CodeError> {
        self.inner.repair_slices(shares, missing, out)
    }

    fn cost(&self, data_len: usize) -> CodeCost {
        self.inner.analytic_cost(data_len)
    }
}

impl CostModel for XCode {
    fn analytic_cost(&self, data_len: usize) -> CodeCost {
        self.inner.analytic_cost(data_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn rejects_non_prime_p() {
        assert!(XCode::new(4).is_err());
        assert!(XCode::new(6).is_err());
        assert!(XCode::new(1).is_err());
        assert!(XCode::new(9).is_err());
    }

    #[test]
    fn parameters_are_p_and_p_minus_2() {
        let code = XCode::new(7).unwrap();
        assert_eq!(code.n(), 7);
        assert_eq!(code.k(), 5);
        assert_eq!(code.fault_tolerance(), 2);
        assert_eq!(code.data_len_unit(), 7 * 5);
        assert_eq!(code.p(), 7);
    }

    #[test]
    fn layout_is_mds_for_small_primes() {
        for p in [3usize, 5, 7, 11] {
            let code = XCode::new(p).unwrap();
            assert!(code.verify_mds(), "X-Code p = {p} is not MDS");
        }
    }

    #[test]
    fn update_complexity_is_exactly_two() {
        for p in [5usize, 7] {
            let code = XCode::new(p).unwrap();
            let cost = code.cost(code.data_len_unit() * 4);
            assert!(
                (cost.update_parities_per_data_cell - 2.0).abs() < 1e-12,
                "p = {p}"
            );
            assert!((cost.storage_overhead - p as f64 / (p - 2) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn all_two_column_erasures_recover_p5() {
        let p = 5;
        let code = XCode::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let data: Vec<u8> = (0..code.data_len_unit() * 8).map(|_| rng.gen()).collect();
        let shares = code.encode(&data).unwrap();
        for a in 0..p {
            for b in (a + 1)..p {
                let mut partial: Vec<Option<Vec<u8>>> = shares.iter().cloned().map(Some).collect();
                partial[a] = None;
                partial[b] = None;
                assert_eq!(code.decode(&partial).unwrap(), data, "erased {a},{b}");
            }
        }
    }

    #[test]
    fn two_column_erasure_uses_chain_decoding() {
        let code = XCode::new(5).unwrap();
        let data: Vec<u8> = (0..code.data_len_unit()).map(|i| i as u8).collect();
        let shares = code.encode(&data).unwrap();
        let mut partial: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
        partial[1] = None;
        partial[3] = None;
        let (out, trace) = code.decode_traced(&partial).unwrap();
        assert_eq!(out, data);
        assert!(
            !trace.used_gaussian_fallback,
            "X-Code decoding follows pure chains"
        );
        assert_eq!(trace.chain.len(), 2 * (5 - 2));
    }

    #[test]
    fn three_erasures_are_rejected() {
        let code = XCode::new(5).unwrap();
        let data = vec![0u8; code.data_len_unit()];
        let shares = code.encode(&data).unwrap();
        let mut partial: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
        partial[0] = None;
        partial[2] = None;
        partial[4] = None;
        assert!(matches!(
            code.decode(&partial),
            Err(CodeError::TooManyErasures { .. })
        ));
    }

    proptest! {
        /// Any payload and any pair of erased columns round-trips (p = 7).
        #[test]
        fn prop_two_erasure_roundtrip_p7(
            seed in any::<u64>(),
            a in 0usize..7,
            b in 0usize..7,
        ) {
            prop_assume!(a != b);
            let code = XCode::new(7).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let data: Vec<u8> = (0..code.data_len_unit() * 2).map(|_| rng.gen()).collect();
            let shares = code.encode(&data).unwrap();
            let mut partial: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
            partial[a] = None;
            partial[b] = None;
            prop_assert_eq!(code.decode(&partial).unwrap(), data);
        }
    }
}
