//! Generic framework for XOR-based **array codes**.
//!
//! Section 4.1 of the RAIN paper describes array codes as "data partitioning
//! schemes" whose only operations are binary XORs, decoded by following
//! *decoding chains* (recover one lost piece, substitute it into the next
//! equation, and so on). This module captures that structure once so that
//! the B-Code, X-Code, and EVENODD all share:
//!
//! * a declarative [`ArrayLayout`] (which data/parity cell sits in which
//!   column, and which data cells each parity equation XORs together),
//! * vectorised encoding over byte buffers,
//! * a **peeling decoder** that literally follows decoding chains and records
//!   them in a [`DecodeTrace`] (used by experiment E9 to reproduce Table 2),
//! * a Gaussian-elimination fallback over GF(2) for erasure patterns where
//!   simple chains stall (EVENODD needs this in some two-column cases),
//! * an exhaustive MDS checker used by tests and by the code-construction
//!   search in [`crate::bcode`].

use crate::error::CodeError;
use crate::matrix::solve_gf2_sparse;
use crate::metrics::CodeCost;
use crate::share::{ShareSet, ShareView};
use crate::traits::{validate_data_len, validate_decode_out, validate_encode_cols};
use crate::xor::xor_into;

/// XOR cell `src` into cell `dst` within one flat buffer of `cell_len`-byte
/// cells. The cells must be distinct; `split_at_mut` proves disjointness.
fn xor_cells(buf: &mut [u8], cell_len: usize, dst: usize, src: usize) {
    debug_assert_ne!(dst, src);
    if dst < src {
        let (lo, hi) = buf.split_at_mut(src * cell_len);
        xor_into(
            &mut lo[dst * cell_len..(dst + 1) * cell_len],
            &hi[..cell_len],
        );
    } else {
        let (lo, hi) = buf.split_at_mut(dst * cell_len);
        xor_into(
            &mut hi[..cell_len],
            &lo[src * cell_len..(src + 1) * cell_len],
        );
    }
}

/// One cell of an array-code column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Cell {
    /// The `i`-th data cell (data cells are numbered `0..num_data_cells` in
    /// the order they are read from the input buffer).
    Data(usize),
    /// The `i`-th parity cell, computed by parity equation `i`.
    Parity(usize),
}

/// Declarative description of an array code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayLayout {
    /// Number of columns (encoded symbols), `n`.
    pub columns: usize,
    /// Number of columns sufficient for reconstruction, `k`.
    pub k: usize,
    /// Cells in each column, outermost index is the column.
    pub column_cells: Vec<Vec<Cell>>,
    /// For each parity equation, the set of data-cell indices XORed together.
    pub equations: Vec<Vec<usize>>,
}

impl ArrayLayout {
    /// Total number of data cells.
    pub fn num_data_cells(&self) -> usize {
        self.column_cells
            .iter()
            .flatten()
            .filter(|c| matches!(c, Cell::Data(_)))
            .count()
    }

    /// Total number of parity cells.
    pub fn num_parity_cells(&self) -> usize {
        self.equations.len()
    }

    /// Number of cells in each column (all columns must be equal).
    pub fn cells_per_column(&self) -> usize {
        self.column_cells[0].len()
    }

    /// Check structural invariants; returns a human-readable error if the
    /// layout is malformed. Used by constructors and tests.
    pub fn validate(&self) -> Result<(), String> {
        if self.columns == 0 || self.column_cells.len() != self.columns {
            return Err("column count mismatch".into());
        }
        let r = self.column_cells[0].len();
        if self.column_cells.iter().any(|c| c.len() != r) {
            return Err("columns have different heights".into());
        }
        let d = self.num_data_cells();
        let mut seen_data = vec![false; d];
        let mut seen_parity = vec![false; self.equations.len()];
        for col in &self.column_cells {
            for cell in col {
                match *cell {
                    Cell::Data(i) => {
                        if i >= d || seen_data[i] {
                            return Err(format!("data cell {i} missing or duplicated"));
                        }
                        seen_data[i] = true;
                    }
                    Cell::Parity(i) => {
                        if i >= self.equations.len() || seen_parity[i] {
                            return Err(format!("parity cell {i} missing or duplicated"));
                        }
                        seen_parity[i] = true;
                    }
                }
            }
        }
        if seen_data.iter().any(|&s| !s) || seen_parity.iter().any(|&s| !s) {
            return Err("some cells are not placed in any column".into());
        }
        for (i, eq) in self.equations.iter().enumerate() {
            if eq.is_empty() {
                return Err(format!("parity equation {i} is empty"));
            }
            if eq.iter().any(|&u| u >= d) {
                return Err(format!("parity equation {i} references a bad data cell"));
            }
        }
        Ok(())
    }

    /// Which column holds a given data cell.
    pub fn column_of_data(&self, data_cell: usize) -> usize {
        for (c, col) in self.column_cells.iter().enumerate() {
            if col.contains(&Cell::Data(data_cell)) {
                return c;
            }
        }
        panic!("data cell {data_cell} not placed");
    }

    /// Exhaustively verify the MDS property for every erasure pattern of
    /// exactly `n - k` columns, using the GF(2) rank of the surviving
    /// equations. Returns the first failing pattern, if any.
    pub fn find_mds_violation(&self) -> Option<Vec<usize>> {
        let n = self.columns;
        let m = n - self.k;
        let mut pattern: Vec<usize> = (0..m).collect();
        loop {
            if !self.erasure_pattern_solvable(&pattern) {
                return Some(pattern);
            }
            // Next combination.
            let mut i = m;
            loop {
                if i == 0 {
                    return None;
                }
                i -= 1;
                if pattern[i] != i + n - m {
                    pattern[i] += 1;
                    for j in i + 1..m {
                        pattern[j] = pattern[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    /// True if the given set of erased columns can be recovered (rank check
    /// over GF(2), independent of actual data).
    pub fn erasure_pattern_solvable(&self, erased_columns: &[usize]) -> bool {
        let erased: Vec<bool> = (0..self.columns)
            .map(|c| erased_columns.contains(&c))
            .collect();
        // Unknowns: data cells in erased columns.
        let mut unknown_index = vec![usize::MAX; self.num_data_cells()];
        let mut num_unknowns = 0;
        for (c, col) in self.column_cells.iter().enumerate() {
            if !erased[c] {
                continue;
            }
            for cell in col {
                if let Cell::Data(d) = *cell {
                    unknown_index[d] = num_unknowns;
                    num_unknowns += 1;
                }
            }
        }
        if num_unknowns == 0 {
            return true;
        }
        // Equations from surviving parity cells.
        let mut eqs: Vec<Vec<usize>> = Vec::new();
        for (c, col) in self.column_cells.iter().enumerate() {
            if erased[c] {
                continue;
            }
            for cell in col {
                if let Cell::Parity(p) = *cell {
                    let unknowns: Vec<usize> = self.equations[p]
                        .iter()
                        .filter(|&&d| unknown_index[d] != usize::MAX)
                        .map(|&d| unknown_index[d])
                        .collect();
                    eqs.push(unknowns);
                }
            }
        }
        let rhs = vec![vec![0u8; 1]; eqs.len()];
        solve_gf2_sparse(num_unknowns, &eqs, &rhs).is_some()
    }
}

/// One step of a decoding chain: which cell was recovered and from which
/// parity equation.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ChainStep {
    /// The recovered data-cell index.
    pub recovered_data_cell: usize,
    /// The parity equation used to recover it.
    pub equation: usize,
    /// The column that stores that parity cell.
    pub parity_column: usize,
}

/// Record of how a decode proceeded — the "decoding chains" of the paper.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DecodeTrace {
    /// Peeling steps in the order they were executed.
    pub chain: Vec<ChainStep>,
    /// True if the peeling decoder stalled and the GF(2) Gaussian fallback
    /// finished the job.
    pub used_gaussian_fallback: bool,
}

/// A concrete XOR array code: an [`ArrayLayout`] plus the encode/decode
/// machinery. The named codes in this crate (`BCode`, `XCode`, `EvenOdd`)
/// wrap an `ArrayCode` and delegate to it.
#[derive(Debug, Clone)]
pub struct ArrayCode {
    layout: ArrayLayout,
    parity_column_of_eq: Vec<usize>,
}

impl ArrayCode {
    /// Build an `ArrayCode` from a layout, validating it first.
    pub fn new(layout: ArrayLayout) -> Result<Self, CodeError> {
        layout
            .validate()
            .map_err(|reason| CodeError::UnsupportedParameters { reason })?;
        let mut parity_column_of_eq = vec![0usize; layout.equations.len()];
        for (c, col) in layout.column_cells.iter().enumerate() {
            for cell in col {
                if let Cell::Parity(p) = *cell {
                    parity_column_of_eq[p] = c;
                }
            }
        }
        Ok(ArrayCode {
            layout,
            parity_column_of_eq,
        })
    }

    /// The underlying layout.
    pub fn layout(&self) -> &ArrayLayout {
        &self.layout
    }

    /// Number of columns `n`.
    pub fn n(&self) -> usize {
        self.layout.columns
    }

    /// Reconstruction threshold `k`.
    pub fn k(&self) -> usize {
        self.layout.k
    }

    /// Input length must be a multiple of the number of data cells.
    pub fn data_len_unit(&self) -> usize {
        self.layout.num_data_cells()
    }

    /// Encode `data` into `n` pre-sized column slices without allocating.
    /// Each slice must be `(data.len() / num_data_cells) * cells_per_column`
    /// bytes; every byte is overwritten.
    pub fn encode_slices(&self, data: &[u8], shares: &mut [&mut [u8]]) -> Result<(), CodeError> {
        validate_data_len(data.len(), self.data_len_unit())?;
        let d = self.layout.num_data_cells();
        let cell_len = data.len() / d;
        let r = self.layout.cells_per_column();
        validate_encode_cols(shares, self.n(), r * cell_len)?;
        for (c, col) in self.layout.column_cells.iter().enumerate() {
            for (slot, cell) in col.iter().enumerate() {
                let dst = &mut shares[c][slot * cell_len..(slot + 1) * cell_len];
                match *cell {
                    Cell::Data(i) => {
                        dst.copy_from_slice(&data[i * cell_len..(i + 1) * cell_len]);
                    }
                    Cell::Parity(p) => {
                        dst.fill(0);
                        for &dc in &self.layout.equations[p] {
                            xor_into(dst, &data[dc * cell_len..(dc + 1) * cell_len]);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Decode surviving shares into the pre-sized `out` slice
    /// (`num_data_cells * cell_len` bytes, fully overwritten), discarding
    /// the trace. No share storage is allocated; the Gaussian fallback (rare
    /// two-column stalls) is the only allocating path.
    pub fn decode_slices(&self, shares: &ShareView<'_>, out: &mut [u8]) -> Result<(), CodeError> {
        self.decode_slices_impl(shares, out, None)
    }

    /// Encode `data` into `n` freshly allocated column buffers.
    pub fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, CodeError> {
        validate_data_len(data.len(), self.data_len_unit())?;
        let cell_len = data.len() / self.layout.num_data_cells();
        let mut set = ShareSet::with_layout(self.n(), cell_len * self.layout.cells_per_column());
        let mut cols = set.columns_mut();
        self.encode_slices(data, &mut cols)?;
        Ok(set.to_vecs())
    }

    /// Decode, discarding the trace.
    pub fn decode(&self, shares: &[Option<Vec<u8>>]) -> Result<Vec<u8>, CodeError> {
        self.decode_traced(shares).map(|(data, _)| data)
    }

    /// Decode and return the decoding chains that were followed.
    pub fn decode_traced(
        &self,
        shares: &[Option<Vec<u8>>],
    ) -> Result<(Vec<u8>, DecodeTrace), CodeError> {
        let view = ShareView::from_options(shares);
        let share_len = view.validate(self.n(), self.k())?;
        let r = self.layout.cells_per_column();
        // Sized for the happy case; a share length not divisible by the cell
        // count is rejected inside decode_slices_impl before `out` is used.
        let mut out = vec![0u8; (share_len / r) * self.layout.num_data_cells()];
        let mut trace = DecodeTrace::default();
        self.decode_slices_impl(&view, &mut out, Some(&mut trace))?;
        Ok((out, trace))
    }

    /// Reconstruct the single column `missing` from the surviving shares,
    /// writing it to `out` (`share_len` bytes). Only the erased data cells
    /// are recovered and only the target column's parity equations are
    /// re-evaluated — no full decode, no full re-encode. Any value present
    /// in slot `missing` of the view is ignored.
    pub fn repair_slices(
        &self,
        shares: &ShareView<'_>,
        missing: usize,
        out: &mut [u8],
    ) -> Result<(), CodeError> {
        let share_len = shares.validate_excluding(self.n(), self.k(), missing)?;
        let r = self.layout.cells_per_column();
        if !share_len.is_multiple_of(r) {
            return Err(CodeError::DecodeFailure {
                reason: format!("share length {share_len} not divisible by {r} cells"),
            });
        }
        let cell_len = share_len / r;
        validate_decode_out(out.len(), share_len)?;

        // Borrow known data cells and parity values from the survivors.
        let d = self.layout.num_data_cells();
        let mut data_src: Vec<Option<&[u8]>> = vec![None; d];
        let mut parity_src: Vec<Option<&[u8]>> = vec![None; self.layout.equations.len()];
        for (c, share) in shares.iter().enumerate() {
            if c == missing {
                continue;
            }
            let Some(buf) = share else { continue };
            for (slot, cell) in self.layout.column_cells[c].iter().enumerate() {
                let bytes = &buf[slot * cell_len..(slot + 1) * cell_len];
                match *cell {
                    Cell::Data(i) => data_src[i] = Some(bytes),
                    Cell::Parity(p) => parity_src[p] = Some(bytes),
                }
            }
        }

        // Recover the erased data cells into a compact scratch buffer
        // (erased cells only — not the whole data block).
        let mut known: Vec<bool> = (0..d).map(|i| data_src[i].is_some()).collect();
        let mut rec_slot = vec![usize::MAX; d];
        let mut num_missing = 0;
        for (dc, slot) in rec_slot.iter_mut().enumerate() {
            if !known[dc] {
                *slot = num_missing;
                num_missing += 1;
            }
        }
        let mut recovered = vec![0u8; num_missing * cell_len];

        // Peel (decoding chains), then Gaussian fallback if stalled.
        loop {
            let mut progressed = false;
            for (eq_idx, eq) in self.layout.equations.iter().enumerate() {
                let Some(parity) = parity_src[eq_idx] else {
                    continue;
                };
                let mut unknowns = 0;
                let mut target = usize::MAX;
                for &dc in eq {
                    if !known[dc] {
                        unknowns += 1;
                        target = dc;
                    }
                }
                if unknowns != 1 {
                    continue;
                }
                let t = rec_slot[target];
                {
                    let cell = &mut recovered[t * cell_len..(t + 1) * cell_len];
                    cell.fill(0);
                    xor_into(cell, parity);
                }
                for &dc in eq {
                    if dc == target {
                        continue;
                    }
                    match data_src[dc] {
                        Some(src) => {
                            xor_into(&mut recovered[t * cell_len..(t + 1) * cell_len], src);
                        }
                        None => xor_cells(&mut recovered, cell_len, t, rec_slot[dc]),
                    }
                }
                known[target] = true;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        let still_missing: Vec<usize> = (0..d).filter(|&i| !known[i]).collect();
        if !still_missing.is_empty() {
            let unknown_index: std::collections::HashMap<usize, usize> = still_missing
                .iter()
                .enumerate()
                .map(|(i, &dc)| (dc, i))
                .collect();
            let mut eqs: Vec<Vec<usize>> = Vec::new();
            let mut rhs: Vec<Vec<u8>> = Vec::new();
            for (eq_idx, eq) in self.layout.equations.iter().enumerate() {
                let Some(parity) = parity_src[eq_idx] else {
                    continue;
                };
                let mut unknowns = Vec::new();
                let mut value = parity.to_vec();
                for &dc in eq {
                    if let Some(idx) = unknown_index.get(&dc) {
                        unknowns.push(*idx);
                    } else if let Some(src) = data_src[dc] {
                        xor_into(&mut value, src);
                    } else {
                        let s = rec_slot[dc];
                        xor_into(&mut value, &recovered[s * cell_len..(s + 1) * cell_len]);
                    }
                }
                if !unknowns.is_empty() {
                    eqs.push(unknowns);
                    rhs.push(value);
                }
            }
            let solution = solve_gf2_sparse(still_missing.len(), &eqs, &rhs).ok_or_else(|| {
                CodeError::DecodeFailure {
                    reason: "surviving parity equations do not determine the lost share".into(),
                }
            })?;
            for (i, &dc) in still_missing.iter().enumerate() {
                let s = rec_slot[dc];
                recovered[s * cell_len..(s + 1) * cell_len].copy_from_slice(&solution[i]);
            }
        }

        // Emit the target column: data cells from the recovered scratch,
        // parity cells re-evaluated from their equations.
        let cell_of = |dc: usize| -> &[u8] {
            match data_src[dc] {
                Some(src) => src,
                None => {
                    let s = rec_slot[dc];
                    &recovered[s * cell_len..(s + 1) * cell_len]
                }
            }
        };
        for (slot, cell) in self.layout.column_cells[missing].iter().enumerate() {
            let dst = &mut out[slot * cell_len..(slot + 1) * cell_len];
            match *cell {
                Cell::Data(i) => dst.copy_from_slice(cell_of(i)),
                Cell::Parity(p) => {
                    dst.fill(0);
                    for &dc in &self.layout.equations[p] {
                        xor_into(dst, cell_of(dc));
                    }
                }
            }
        }
        Ok(())
    }

    /// Shared decode path: peel (recording chains into `trace` when given),
    /// then the GF(2) Gaussian fallback.
    fn decode_slices_impl(
        &self,
        shares: &ShareView<'_>,
        out: &mut [u8],
        mut trace: Option<&mut DecodeTrace>,
    ) -> Result<(), CodeError> {
        let share_len = shares.validate(self.n(), self.k())?;
        let r = self.layout.cells_per_column();
        if !share_len.is_multiple_of(r) {
            return Err(CodeError::DecodeFailure {
                reason: format!("share length {share_len} not divisible by {r} cells"),
            });
        }
        let cell_len = share_len / r;
        let d = self.layout.num_data_cells();
        validate_decode_out(out.len(), d * cell_len)?;

        // Copy known data cells into place; borrow available parity values.
        let mut known = vec![false; d];
        let mut parity_src: Vec<Option<&[u8]>> = vec![None; self.layout.equations.len()];
        for (c, share) in shares.iter().enumerate() {
            let Some(buf) = share else { continue };
            for (slot, cell) in self.layout.column_cells[c].iter().enumerate() {
                let bytes = &buf[slot * cell_len..(slot + 1) * cell_len];
                match *cell {
                    Cell::Data(i) => {
                        out[i * cell_len..(i + 1) * cell_len].copy_from_slice(bytes);
                        known[i] = true;
                    }
                    Cell::Parity(p) => parity_src[p] = Some(bytes),
                }
            }
        }
        if known.iter().all(|&is_known| is_known) {
            return Ok(());
        }

        self.peel_slices(out, &mut known, &parity_src, cell_len, &mut trace);

        // If peeling stalled, finish with Gaussian elimination over GF(2).
        let still_missing: Vec<usize> = (0..d).filter(|&i| !known[i]).collect();
        if !still_missing.is_empty() {
            if let Some(t) = trace {
                t.used_gaussian_fallback = true;
            }
            self.gaussian_finish(out, &known, &parity_src, cell_len, &still_missing)?;
        }
        Ok(())
    }

    /// Peeling decoder: repeatedly find a surviving parity equation with
    /// exactly one unknown data cell and solve it **in place** in `out`.
    /// This is the "decoding chain" procedure of Section 4.1.
    fn peel_slices(
        &self,
        out: &mut [u8],
        known: &mut [bool],
        parity_src: &[Option<&[u8]>],
        cell_len: usize,
        trace: &mut Option<&mut DecodeTrace>,
    ) {
        loop {
            let mut progressed = false;
            for (eq_idx, eq) in self.layout.equations.iter().enumerate() {
                let Some(parity) = parity_src[eq_idx] else {
                    continue;
                };
                let mut unknowns = 0;
                let mut target = usize::MAX;
                for &dc in eq {
                    if !known[dc] {
                        unknowns += 1;
                        target = dc;
                    }
                }
                if unknowns != 1 {
                    continue;
                }
                {
                    let cell = &mut out[target * cell_len..(target + 1) * cell_len];
                    cell.fill(0);
                    xor_into(cell, parity);
                }
                for &dc in eq {
                    if dc != target {
                        xor_cells(out, cell_len, target, dc);
                    }
                }
                known[target] = true;
                if let Some(t) = trace {
                    t.chain.push(ChainStep {
                        recovered_data_cell: target,
                        equation: eq_idx,
                        parity_column: self.parity_column_of_eq[eq_idx],
                    });
                }
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }

    /// Gaussian-elimination fallback for erasure patterns where peeling
    /// stalls (every surviving equation has >= 2 unknowns).
    fn gaussian_finish(
        &self,
        out: &mut [u8],
        known: &[bool],
        parity_src: &[Option<&[u8]>],
        cell_len: usize,
        missing: &[usize],
    ) -> Result<(), CodeError> {
        let unknown_index: std::collections::HashMap<usize, usize> =
            missing.iter().enumerate().map(|(i, &dc)| (dc, i)).collect();
        let mut eqs: Vec<Vec<usize>> = Vec::new();
        let mut rhs: Vec<Vec<u8>> = Vec::new();
        for (eq_idx, eq) in self.layout.equations.iter().enumerate() {
            let Some(parity) = parity_src[eq_idx] else {
                continue;
            };
            let mut unknowns = Vec::new();
            let mut value = parity.to_vec();
            for &dc in eq {
                if known[dc] {
                    xor_into(&mut value, &out[dc * cell_len..(dc + 1) * cell_len]);
                } else {
                    unknowns.push(unknown_index[&dc]);
                }
            }
            if !unknowns.is_empty() {
                eqs.push(unknowns);
                rhs.push(value);
            }
        }
        let solution = solve_gf2_sparse(missing.len(), &eqs, &rhs).ok_or_else(|| {
            CodeError::DecodeFailure {
                reason: "surviving parity equations do not determine the lost data".into(),
            }
        })?;
        for (i, &dc) in missing.iter().enumerate() {
            out[dc * cell_len..(dc + 1) * cell_len].copy_from_slice(&solution[i]);
        }
        Ok(())
    }

    /// Analytic cost model shared by all XOR array codes.
    pub fn analytic_cost(&self, data_len: usize) -> CodeCost {
        let d = self.layout.num_data_cells();
        let cell_len = (data_len / d).max(1) as u64;
        let encode_xor_bytes: u64 = self
            .layout
            .equations
            .iter()
            .map(|eq| (eq.len().saturating_sub(1)) as u64 * cell_len)
            .sum();
        // Worst-case decode: lose n-k full columns; cost is roughly the cost
        // of re-deriving the lost data cells plus re-encoding lost parities.
        let m = self.n() - self.k();
        let lost_cells = m * self.layout.cells_per_column();
        let avg_eq_terms = self
            .layout
            .equations
            .iter()
            .map(|eq| eq.len())
            .sum::<usize>() as f64
            / self.layout.equations.len() as f64;
        let decode_xor_bytes = (lost_cells as f64 * avg_eq_terms * cell_len as f64) as u64;
        // Update complexity: how many parities reference each data cell.
        let mut refs = vec![0usize; d];
        for eq in &self.layout.equations {
            for &dc in eq {
                refs[dc] += 1;
            }
        }
        let update = refs.iter().sum::<usize>() as f64 / d as f64;
        let total_cells = self.n() * self.layout.cells_per_column();
        CodeCost {
            data_len,
            encode_xor_bytes,
            decode_xor_bytes,
            update_parities_per_data_cell: update,
            storage_overhead: total_cells as f64 / d as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny hand-built (3,2) single-parity layout used to exercise the
    /// framework independently of the real codes.
    fn tiny_layout() -> ArrayLayout {
        ArrayLayout {
            columns: 3,
            k: 2,
            column_cells: vec![
                vec![Cell::Data(0)],
                vec![Cell::Data(1)],
                vec![Cell::Parity(0)],
            ],
            equations: vec![vec![0, 1]],
        }
    }

    #[test]
    fn tiny_layout_validates_and_is_mds() {
        let l = tiny_layout();
        assert!(l.validate().is_ok());
        assert!(l.find_mds_violation().is_none());
        assert_eq!(l.num_data_cells(), 2);
        assert_eq!(l.num_parity_cells(), 1);
    }

    #[test]
    fn tiny_code_recovers_each_single_erasure() {
        let code = ArrayCode::new(tiny_layout()).unwrap();
        let data = vec![1u8, 2, 3, 4, 5, 6]; // 2 cells of 3 bytes
        let shares = code.encode(&data).unwrap();
        for lost in 0..3 {
            let mut partial: Vec<Option<Vec<u8>>> = shares.iter().cloned().map(Some).collect();
            partial[lost] = None;
            let (out, trace) = code.decode_traced(&partial).unwrap();
            assert_eq!(out, data);
            if lost < 2 {
                assert_eq!(trace.chain.len(), 1);
                assert!(!trace.used_gaussian_fallback);
            }
        }
    }

    #[test]
    fn repair_matches_encode_for_every_single_erasure() {
        let code = ArrayCode::new(tiny_layout()).unwrap();
        let data = vec![1u8, 2, 3, 4, 5, 6];
        let shares = code.encode(&data).unwrap();
        for lost in 0..3 {
            let mut view = ShareView::missing(3);
            for (i, s) in shares.iter().enumerate() {
                if i != lost {
                    view.set(i, s);
                }
            }
            let mut out = vec![0u8; shares[lost].len()];
            code.repair_slices(&view, lost, &mut out).unwrap();
            assert_eq!(out, shares[lost], "repaired column {lost}");
        }
    }

    #[test]
    fn repair_rejects_bad_target_and_too_few_survivors() {
        let code = ArrayCode::new(tiny_layout()).unwrap();
        let data = vec![1u8, 2, 3, 4, 5, 6];
        let shares = code.encode(&data).unwrap();
        let mut out = vec![0u8; shares[0].len()];
        let view = ShareView::missing(3);
        assert!(matches!(
            code.repair_slices(&view, 9, &mut out),
            Err(CodeError::BadShareIndex { .. })
        ));
        // Only one survivor for a k = 2 code.
        let mut view = ShareView::missing(3);
        view.set(1, &shares[1]);
        assert!(matches!(
            code.repair_slices(&view, 0, &mut out),
            Err(CodeError::TooManyErasures { .. })
        ));
    }

    #[test]
    fn encode_slices_rejects_misshapen_columns() {
        let code = ArrayCode::new(tiny_layout()).unwrap();
        let data = vec![1u8, 2, 3, 4, 5, 6];
        let mut a = vec![0u8; 3];
        let mut b = vec![0u8; 3];
        let mut short = vec![0u8; 2];
        let mut cols: Vec<&mut [u8]> = vec![&mut a, &mut b, &mut short];
        assert!(matches!(
            code.encode_slices(&data, &mut cols),
            Err(CodeError::InconsistentShareLength)
        ));
    }

    #[test]
    fn malformed_layouts_are_rejected() {
        // Duplicate data cell.
        let l = ArrayLayout {
            columns: 2,
            k: 1,
            column_cells: vec![vec![Cell::Data(0)], vec![Cell::Data(0)]],
            equations: vec![],
        };
        assert!(l.validate().is_err());

        // Empty equation.
        let l = ArrayLayout {
            columns: 2,
            k: 1,
            column_cells: vec![vec![Cell::Data(0)], vec![Cell::Parity(0)]],
            equations: vec![vec![]],
        };
        assert!(l.validate().is_err());

        // Ragged columns.
        let l = ArrayLayout {
            columns: 2,
            k: 1,
            column_cells: vec![vec![Cell::Data(0), Cell::Parity(0)], vec![Cell::Data(1)]],
            equations: vec![vec![0, 1]],
        };
        assert!(l.validate().is_err());
    }

    #[test]
    fn non_mds_layout_is_detected() {
        // Parity covers only data cell 0, so losing column 1 alongside the
        // parity column is unrecoverable... but with k=1 we only erase one
        // column at a time; instead build a k=1 layout where erasing the
        // column holding data 1 cannot be recovered.
        let l = ArrayLayout {
            columns: 3,
            k: 1,
            column_cells: vec![
                vec![Cell::Data(0)],
                vec![Cell::Data(1)],
                vec![Cell::Parity(0)],
            ],
            // Parity only protects data 0; losing columns {1,2} is fatal.
            equations: vec![vec![0]],
        };
        assert!(l.validate().is_ok());
        assert!(l.find_mds_violation().is_some());
    }

    #[test]
    fn decode_rejects_bad_share_length() {
        let code = ArrayCode::new(tiny_layout()).unwrap();
        let shares = vec![Some(vec![1u8, 2]), Some(vec![3u8, 4]), None];
        // 2 bytes per column with 1 cell per column is fine; force a bad
        // length by making them inconsistent instead.
        let bad = vec![Some(vec![1u8, 2]), Some(vec![3u8]), None];
        assert!(code.decode(&bad).is_err());
        assert!(code.decode(&shares).is_ok());
    }

    #[test]
    fn analytic_cost_counts_equation_terms() {
        let code = ArrayCode::new(tiny_layout()).unwrap();
        let cost = code.analytic_cost(200);
        // One equation with 2 terms -> 1 XOR per byte of a 100-byte cell.
        assert_eq!(cost.encode_xor_bytes, 100);
        assert!((cost.update_parities_per_data_cell - 1.0).abs() < 1e-9);
        assert!((cost.storage_overhead - 1.5).abs() < 1e-9);
    }
}
