//! Scratch-reuse property tests for the buffer-oriented API.
//!
//! One [`ShareSet`], one decode buffer, and one repair buffer are threaded
//! through a random interleaving of `encode_into` / `decode_into` / `repair`
//! calls across *different codes and data lengths*, and every result must
//! match the allocating `encode` / `decode` API bit-for-bit. This is the
//! contract that makes buffer reuse safe: no call may ever observe bytes
//! left over from a previous call with a different layout.

use std::sync::Arc;

use proptest::prelude::*;
use rain_codes::{
    BCode, ErasureCode, EvenOdd, Mirroring, ReedSolomon, ShareSet, ShareView, SingleParity,
    StripedCodec, XCode,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// The code zoo the interleaving draws from: all six families plus a
/// striped wrapper (different `n`, `k`, units, and share lengths, so
/// consecutive ops genuinely re-layout the shared buffers).
fn codes() -> Vec<Arc<dyn ErasureCode>> {
    let bcode = Arc::new(BCode::table_1a());
    vec![
        bcode.clone(),
        Arc::new(XCode::new(5).unwrap()),
        Arc::new(EvenOdd::new(5).unwrap()),
        Arc::new(ReedSolomon::new(8, 6).unwrap()),
        Arc::new(Mirroring::new(3)),
        Arc::new(SingleParity::new(5)),
        Arc::new(StripedCodec::new(bcode, 2 * 12, 2).unwrap()),
    ]
}

/// Run one op derived from `seed` against `code`, reusing the caller's
/// buffers, and compare every step with the allocating API.
fn run_op(
    code: &dyn ErasureCode,
    seed: u64,
    set: &mut ShareSet,
    decoded: &mut Vec<u8>,
    repaired: &mut Vec<u8>,
) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let blocks = 1 + (seed as usize % 7);
    let data: Vec<u8> = (0..code.data_len_unit() * blocks)
        .map(|_| rng.gen())
        .collect();

    // encode_into through the reused set == allocating encode.
    code.encode_into(&data, set).expect("encode_into");
    let reference = code.encode(&data).expect("encode");
    prop_assert_eq!(&set.to_vecs(), &reference);

    // decode_into through the reused out == original data == allocating
    // decode, after erasing up to the fault tolerance.
    let mut view = set.as_view();
    let erasures = seed as usize % (code.fault_tolerance() + 1);
    let mut victims: Vec<usize> = (0..code.n()).collect();
    for _ in 0..erasures {
        let pick = rng.gen::<usize>() % victims.len();
        view.clear(victims.swap_remove(pick));
    }
    code.decode_into(&view, decoded).expect("decode_into");
    prop_assert_eq!(&*decoded, &data);
    let options: Vec<Option<Vec<u8>>> = (0..code.n())
        .map(|i| view.share(i).map(|s| s.to_vec()))
        .collect();
    prop_assert_eq!(&code.decode(&options).expect("decode"), &data);

    // repair through the reused buffer == the share the encoder produced.
    let missing = rng.gen::<usize>() % code.n();
    let mut view = ShareView::missing(code.n());
    for i in 0..code.n() {
        if i != missing {
            view.set(i, set.share(i));
        }
    }
    repaired.resize(set.share_len(), 0);
    code.repair(&view, missing, repaired).expect("repair");
    prop_assert_eq!(&*repaired, set.share(missing));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Interleave encode/decode/repair of varying codes and lengths through
    /// ONE ShareSet + ONE decode buffer + ONE repair buffer.
    #[test]
    fn prop_interleaved_scratch_reuse_matches_allocating_api(
        op_seeds in proptest::collection::vec(any::<u64>(), 4..12),
    ) {
        let zoo = codes();
        let mut set = ShareSet::new();
        let mut decoded = Vec::new();
        let mut repaired = Vec::new();
        for seed in op_seeds {
            let code = &zoo[(seed >> 32) as usize % zoo.len()];
            run_op(code.as_ref(), seed, &mut set, &mut decoded, &mut repaired)?;
        }
    }
}
