//! Property-style round-trip tests for every code family: encode random
//! data, erase up to `n - k` random shares, decode, and require the exact
//! original bytes back. These exercise the word-wide XOR and table-driven
//! GF(256) kernels end-to-end through all four array/RS code paths.

use std::sync::OnceLock;

use proptest::prelude::*;
use rain_codes::{BCode, ErasureCode, EvenOdd, ReedSolomon, XCode};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Encode `blocks` units of random data, erase `erasures` random shares,
/// decode, and compare byte-for-byte.
fn roundtrip(code: &dyn ErasureCode, seed: u64, blocks: usize, erasures: usize) {
    assert!(
        erasures <= code.fault_tolerance(),
        "test bug: asked for more erasures than the code tolerates"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let len = code.data_len_unit() * blocks;
    let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();

    let shares = code.encode(&data).expect("encode");
    assert_eq!(shares.len(), code.n());

    let mut partial: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
    let mut columns: Vec<usize> = (0..code.n()).collect();
    columns.shuffle(&mut rng);
    for &column in &columns[..erasures] {
        partial[column] = None;
    }

    let decoded = code.decode(&partial).expect("decode");
    assert_eq!(
        decoded,
        data,
        "{:?} failed to round-trip with {erasures} erasures (seed {seed})",
        code.kind()
    );
}

fn bcode10() -> &'static BCode {
    // The (10, 8) construction runs a randomized layout search; build once.
    static CODE: OnceLock<BCode> = OnceLock::new();
    CODE.get_or_init(|| BCode::new(10).expect("B-Code n=10 constructs"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The paper's (6, 4) B-Code survives any loss of up to two shares.
    #[test]
    fn prop_bcode_6_4_roundtrips(seed in any::<u64>(), blocks in 1usize..9, erasures in 0usize..3) {
        roundtrip(&BCode::table_1a(), seed, blocks, erasures);
    }

    /// The searched (10, 8) B-Code does too.
    #[test]
    fn prop_bcode_10_8_roundtrips(seed in any::<u64>(), blocks in 1usize..5, erasures in 0usize..3) {
        roundtrip(bcode10(), seed, blocks, erasures);
    }

    /// X-Code, small and mid prime.
    #[test]
    fn prop_xcode_5_roundtrips(seed in any::<u64>(), blocks in 1usize..9, erasures in 0usize..3) {
        roundtrip(&XCode::new(5).unwrap(), seed, blocks, erasures);
    }

    #[test]
    fn prop_xcode_7_roundtrips(seed in any::<u64>(), blocks in 1usize..5, erasures in 0usize..3) {
        roundtrip(&XCode::new(7).unwrap(), seed, blocks, erasures);
    }

    /// EVENODD, small and mid prime.
    #[test]
    fn prop_evenodd_5_roundtrips(seed in any::<u64>(), blocks in 1usize..9, erasures in 0usize..3) {
        roundtrip(&EvenOdd::new(5).unwrap(), seed, blocks, erasures);
    }

    #[test]
    fn prop_evenodd_7_roundtrips(seed in any::<u64>(), blocks in 1usize..5, erasures in 0usize..3) {
        roundtrip(&EvenOdd::new(7).unwrap(), seed, blocks, erasures);
    }

    /// Reed-Solomon through the precomputed split-table encode path.
    #[test]
    fn prop_rs_6_4_roundtrips(seed in any::<u64>(), blocks in 1usize..65, erasures in 0usize..3) {
        roundtrip(&ReedSolomon::new(6, 4).unwrap(), seed, blocks, erasures);
    }

    #[test]
    fn prop_rs_10_8_roundtrips(seed in any::<u64>(), blocks in 1usize..33, erasures in 0usize..3) {
        roundtrip(&ReedSolomon::new(10, 8).unwrap(), seed, blocks, erasures);
    }
}

/// Exhaustive (not sampled) pass over every maximal erasure pattern for the
/// paper's parameter points, at a share length that exercises both the word
/// loop and the scalar tail of the kernels.
#[test]
fn all_maximal_erasure_patterns_roundtrip() {
    let codes: Vec<Box<dyn ErasureCode>> = vec![
        Box::new(BCode::table_1a()),
        Box::new(XCode::new(5).unwrap()),
        Box::new(EvenOdd::new(5).unwrap()),
        Box::new(ReedSolomon::new(6, 4).unwrap()),
    ];
    for code in &codes {
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        // 13 units: odd, so cell lengths land off the 8-byte lane boundary.
        let data: Vec<u8> = (0..code.data_len_unit() * 13).map(|_| rng.gen()).collect();
        let shares = code.encode(&data).unwrap();
        let n = code.n();
        for a in 0..n {
            for b in (a + 1)..n {
                let mut partial: Vec<Option<Vec<u8>>> = shares.iter().cloned().map(Some).collect();
                partial[a] = None;
                partial[b] = None;
                assert_eq!(
                    code.decode(&partial).unwrap(),
                    data,
                    "{:?} failed erasing columns {a},{b}",
                    code.kind()
                );
            }
        }
    }
}
