//! Equivalence tests: the word-wide fast kernels must match the retained
//! scalar baselines byte-for-byte on random inputs, including every
//! non-word-aligned length in `1..129`.

use proptest::prelude::*;
use rain_codes::gf256::Gf256;
use rain_codes::xor;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_buf(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.gen()).collect()
}

#[test]
fn xor_kernels_agree_on_all_lengths_1_to_129() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for len in 1..129usize {
        let src = random_buf(&mut rng, len);
        let mut fast = random_buf(&mut rng, len);
        let mut slow = fast.clone();
        xor::xor_into(&mut fast, &src);
        xor::scalar_xor_into(&mut slow, &src);
        assert_eq!(fast, slow, "xor kernels diverge at len = {len}");
    }
}

#[test]
fn mul_acc_kernels_agree_on_all_lengths_1_to_129() {
    let gf = Gf256::new();
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for len in 1..129usize {
        // Random coefficient per length, plus the special cases 0 and 1.
        for c in [rng.gen::<u8>(), 0, 1] {
            let src = random_buf(&mut rng, len);
            let mut fast = random_buf(&mut rng, len);
            let mut slow = fast.clone();
            gf.mul_acc_slice(&mut fast, &src, c);
            gf.scalar_mul_acc_slice(&mut slow, &src, c);
            assert_eq!(
                fast, slow,
                "mul_acc kernels diverge at len = {len}, c = {c}"
            );
        }
    }
}

#[test]
fn is_zero_agrees_with_bytewise_scan_across_lengths() {
    let mut rng = StdRng::seed_from_u64(7);
    for len in 0..129usize {
        let mut buf = vec![0u8; len];
        assert!(xor::is_zero(&buf));
        if len > 0 {
            let hot = rng.gen_range(0..len);
            buf[hot] = rng.gen_range(1..=255u8);
            assert_eq!(
                xor::is_zero(&buf),
                buf.iter().all(|&b| b == 0),
                "len = {len}, hot = {hot}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random lengths (word-aligned and not), random data, random
    /// coefficients: fast and scalar GF kernels are indistinguishable.
    #[test]
    fn prop_mul_acc_equivalence(seed in any::<u64>(), len in 1usize..4097, c in any::<u8>()) {
        let gf = Gf256::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let src = random_buf(&mut rng, len);
        let mut fast = random_buf(&mut rng, len);
        let mut slow = fast.clone();
        gf.mul_acc_slice(&mut fast, &src, c);
        gf.scalar_mul_acc_slice(&mut slow, &src, c);
        prop_assert_eq!(fast, slow);
    }

    /// Same for the XOR kernels, and `xor_many` against repeated xors.
    #[test]
    fn prop_xor_equivalence(seed in any::<u64>(), len in 1usize..4097, nsources in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sources: Vec<Vec<u8>> = (0..nsources).map(|_| random_buf(&mut rng, len)).collect();
        let refs: Vec<&[u8]> = sources.iter().map(|s| s.as_slice()).collect();

        let (fast, ops) = xor::xor_many(len, &refs);
        prop_assert_eq!(ops, (nsources * len) as u64);

        let mut slow = vec![0u8; len];
        for s in &sources {
            xor::scalar_xor_into(&mut slow, s);
        }
        prop_assert_eq!(fast, slow);
    }
}
