//! placeholder
