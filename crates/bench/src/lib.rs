//! std-only benchmark harness for the erasure-coding kernels.
//!
//! No external bench framework is available offline, so this crate rolls the
//! minimum needed: adaptive-iteration wall-clock timing, MB/s accounting,
//! and a tiny JSON emitter for `BENCH_codes.json`. Run it with
//!
//! ```text
//! cargo run -p bench --release            # full run, writes BENCH_codes.json
//! cargo run -p bench --release -- --smoke # fast smoke pass (CI)
//! ```
//!
//! In optimised builds the harness **asserts** that the word-wide kernels
//! ([`rain_codes::xor::xor_into`] and the table-driven
//! [`rain_codes::gf256::MulTable::mul_acc`]) are at least 4x their retained
//! scalar baselines on 64 KiB blocks, so a kernel regression fails the bench
//! run itself. Debug builds skip the assertion — unoptimised timings say
//! nothing about the kernels.

use std::time::Instant;

/// How long to keep re-running each measured closure.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Minimum measured wall-clock time per benchmark, in seconds.
    pub min_seconds: f64,
    /// Warm-up iterations before timing starts.
    pub warmup_iters: u32,
}

impl BenchConfig {
    /// Full-fidelity configuration.
    pub fn full() -> Self {
        BenchConfig {
            min_seconds: 0.25,
            warmup_iters: 3,
        }
    }

    /// Quick configuration for CI smoke runs.
    pub fn smoke() -> Self {
        BenchConfig {
            min_seconds: 0.02,
            warmup_iters: 1,
        }
    }
}

/// Measure `f`, which processes `bytes` bytes per call, and return MB/s
/// (decimal megabytes, the storage-throughput convention).
pub fn throughput_mb_s<F: FnMut()>(config: &BenchConfig, bytes: usize, mut f: F) -> f64 {
    for _ in 0..config.warmup_iters {
        f();
    }
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= config.min_seconds {
            return bytes as f64 * iters as f64 / elapsed / 1e6;
        }
        // Scale the iteration count toward the time budget, at least 2x.
        let scale = (config.min_seconds / elapsed.max(1e-9)).ceil() as u64;
        iters = iters.saturating_mul(scale.clamp(2, 128));
    }
}

/// Minimal JSON value builder — just what `BENCH_codes.json` needs.
#[derive(Debug, Clone)]
pub enum Json {
    /// A float (serialised with enough precision to round-trip MB/s).
    Num(f64),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A string (escaped on write).
    Str(String),
    /// An ordered list.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialise with two-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v:.3}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_positive_and_sane() {
        let config = BenchConfig {
            min_seconds: 0.001,
            warmup_iters: 0,
        };
        let mut buf = vec![0u8; 4096];
        let mb_s = throughput_mb_s(&config, buf.len(), || {
            for b in buf.iter_mut() {
                *b = b.wrapping_add(1);
            }
        });
        assert!(mb_s > 0.0);
    }

    #[test]
    fn json_renders_nested_structures() {
        let doc = Json::obj(vec![
            ("name", Json::Str("xor_into".into())),
            ("speedup", Json::Num(12.5)),
            ("ok", Json::Bool(true)),
            ("sizes", Json::Arr(vec![Json::Int(4096), Json::Int(65536)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = doc.render();
        assert!(text.contains("\"name\": \"xor_into\""));
        assert!(text.contains("\"speedup\": 12.500"));
        assert!(text.contains("\"sizes\": [\n    4096,\n    65536\n  ]"));
        assert!(text.contains("\"empty\": []"));
    }

    #[test]
    fn json_escapes_strings() {
        let text = Json::Str("a\"b\\c\nd\u{1}".into()).render();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }
}
