//! std-only benchmark harness for the erasure-coding kernels.
//!
//! No external bench framework is available offline, so this crate rolls the
//! minimum needed: adaptive-iteration wall-clock timing, MB/s accounting,
//! and a tiny JSON emitter for `BENCH_codes.json`. Run it with
//!
//! ```text
//! cargo run -p bench --release            # full run, writes BENCH_codes.json
//! cargo run -p bench --release -- --smoke # fast smoke pass (CI)
//! cargo run -p bench --release -- --smoke --baseline BENCH_codes.json
//!                                         # CI: fail on confirmed regressions
//! cargo run -p bench --release -- --bless # regenerate the baseline
//! ```
//!
//! In optimised builds the harness **asserts** that the word-wide kernels
//! ([`rain_codes::xor::xor_into`] and the table-driven
//! [`rain_codes::gf256::MulTable::mul_acc`]) are at least 4x their retained
//! scalar baselines on 64 KiB blocks, that the zero-alloc `encode_into`
//! beats the allocating `encode` at 4 KiB, that single-share `repair`
//! beats decode + re-encode at 1 MiB, and that the grouped small-object
//! store is at least 2x the per-object path at 1 KiB — so an API-layer
//! regression fails the bench run itself. Debug builds skip the assertions
//! — unoptimised timings say nothing about the kernels.
//!
//! ## `BENCH_codes.json` schema (`rain-bench-codes/v2`)
//!
//! The emitted document is one JSON object with a `schema` marker and six
//! measurement sections. All throughputs are decimal MB/s; every `speedup`
//! is `candidate / baseline` of the same row.
//!
//! * **`config`** — how the run was taken: `smoke` (short windows),
//!   `optimized_build`, `gf_bulk_kernel` (the GF(256) kernel dispatched on
//!   this CPU, e.g. `"avx2"` or `"portable"`), `min_seconds` per
//!   measurement, `required_kernel_speedup`, and `workers` (available
//!   parallelism; striped rows only mean something when it is > 1).
//! * **`kernels`** — microbenchmarks of the shared kernels against the
//!   retained scalar baselines: `{kernel, block_bytes, fast_mb_s,
//!   scalar_mb_s, speedup}` per `(kernel, block size)` point.
//! * **`codes`** — whole-code throughput through the buffer API:
//!   `{code, n, k, data_bytes, encode_mb_s, decode_mb_s,
//!   encode_xors_per_data_byte}`. Decode rows drop the first `n - k`
//!   shares, so the decoder reconstructs data instead of reassembling it.
//!   These are the rows the `--baseline` regression diff compares.
//! * **`api`** — allocating `encode` vs zero-alloc `encode_into` at 4 KiB:
//!   `{code, n, k, data_bytes, encode_alloc_mb_s, encode_into_mb_s,
//!   speedup}`.
//! * **`striped`** — single-thread vs [`rain_codes::StripedCodec`] encoding
//!   at 1 MiB: `{code, n, k, data_bytes, single_mb_s, striped_mb_s,
//!   speedup}`.
//! * **`repair`** — decode + re-encode vs single-share `repair` at 1 MiB:
//!   `{code, n, k, data_bytes, decode_reencode_mb_s, repair_mb_s,
//!   speedup}`.
//! * **`grouped`** — the storage layer's coding-group batching vs the
//!   per-object path for small objects: `{code, op, n, k, object_bytes,
//!   objects, per_object_mb_s, grouped_mb_s, speedup}` where `op` is
//!   `store` (steady-state churn, grouped side sealing every batch),
//!   `retrieve` (co-located reads amortised by the group decode cache), or
//!   `repair` (hot-swapped node re-derived: one reconstruction per object
//!   vs one per group). Throughput counts object payload bytes on both
//!   sides, so the columns are directly comparable.

#![warn(missing_docs)]

use std::time::Instant;

/// How long to keep re-running each measured closure.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Minimum measured wall-clock time per benchmark, in seconds.
    pub min_seconds: f64,
    /// Warm-up iterations before timing starts.
    pub warmup_iters: u32,
}

impl BenchConfig {
    /// Full-fidelity configuration.
    pub fn full() -> Self {
        BenchConfig {
            min_seconds: 0.25,
            warmup_iters: 3,
        }
    }

    /// Quick configuration for CI smoke runs.
    pub fn smoke() -> Self {
        BenchConfig {
            min_seconds: 0.02,
            warmup_iters: 1,
        }
    }
}

/// Measure `f`, which processes `bytes` bytes per call, and return MB/s
/// (decimal megabytes, the storage-throughput convention).
///
/// The time budget is split into three windows and the **best** window wins:
/// scheduler interference on a shared box only ever slows a window down, so
/// the maximum is the stable estimate of what the code can do — which is
/// what the baseline regression diff needs to compare run-over-run.
pub fn throughput_mb_s<F: FnMut()>(config: &BenchConfig, bytes: usize, mut f: F) -> f64 {
    for _ in 0..config.warmup_iters {
        f();
    }
    let window = config.min_seconds / 3.0;
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= window {
            // Calibrated: this was the first window; race two more with the
            // same iteration count and keep the fastest.
            let mut best = bytes as f64 * iters as f64 / elapsed / 1e6;
            for _ in 0..2 {
                let start = Instant::now();
                for _ in 0..iters {
                    f();
                }
                let elapsed = start.elapsed().as_secs_f64();
                best = best.max(bytes as f64 * iters as f64 / elapsed / 1e6);
            }
            return best;
        }
        // Scale the iteration count toward the window budget, at least 2x.
        let scale = (window / elapsed.max(1e-9)).ceil() as u64;
        iters = iters.saturating_mul(scale.clamp(2, 128));
    }
}

/// Minimal JSON value builder — just what `BENCH_codes.json` needs.
#[derive(Debug, Clone)]
pub enum Json {
    /// A float (serialised with enough precision to round-trip MB/s).
    Num(f64),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A string (escaped on write).
    Str(String),
    /// An ordered list.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parse a JSON document (the subset this crate emits: objects, arrays,
    /// strings, numbers, booleans, `null`). Used to read a committed
    /// `BENCH_codes.json` back for baseline comparison.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value (floats and integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integer value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialise with two-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v:.3}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Recursive-descent parser for the subset of JSON [`Json::render`] emits.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", c as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            // Non-finite floats render as null; NaN keeps them numeric.
            Some(b'n') if self.eat_literal("null") => Ok(Json::Num(f64::NAN)),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .map(|c| c.is_ascii_digit() || b"+-.eE".contains(&c))
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if text.is_empty() {
            return Err(format!("expected a value at offset {start}"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_positive_and_sane() {
        let config = BenchConfig {
            min_seconds: 0.001,
            warmup_iters: 0,
        };
        let mut buf = vec![0u8; 4096];
        let mb_s = throughput_mb_s(&config, buf.len(), || {
            for b in buf.iter_mut() {
                *b = b.wrapping_add(1);
            }
        });
        assert!(mb_s > 0.0);
    }

    #[test]
    fn json_renders_nested_structures() {
        let doc = Json::obj(vec![
            ("name", Json::Str("xor_into".into())),
            ("speedup", Json::Num(12.5)),
            ("ok", Json::Bool(true)),
            ("sizes", Json::Arr(vec![Json::Int(4096), Json::Int(65536)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = doc.render();
        assert!(text.contains("\"name\": \"xor_into\""));
        assert!(text.contains("\"speedup\": 12.500"));
        assert!(text.contains("\"sizes\": [\n    4096,\n    65536\n  ]"));
        assert!(text.contains("\"empty\": []"));
    }

    #[test]
    fn json_escapes_strings() {
        let text = Json::Str("a\"b\\c\nd\u{1}".into()).render();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::obj(vec![
            ("name", Json::Str("xor \"fast\"\npath".into())),
            ("speedup", Json::Num(12.5)),
            ("count", Json::Int(-3)),
            ("ok", Json::Bool(true)),
            ("rows", Json::Arr(vec![Json::Int(1), Json::Num(0.125)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::obj(vec![])),
        ]);
        let parsed = Json::parse(&doc.render()).expect("parse");
        assert_eq!(
            parsed.get("name").unwrap().as_str().unwrap(),
            "xor \"fast\"\npath"
        );
        assert_eq!(parsed.get("speedup").unwrap().as_f64().unwrap(), 12.5);
        assert_eq!(parsed.get("count").unwrap().as_i64().unwrap(), -3);
        assert!(matches!(parsed.get("ok"), Some(Json::Bool(true))));
        let rows = parsed.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].as_i64(), Some(1));
        assert_eq!(rows[1].as_f64(), Some(0.125));
        assert!(parsed
            .get("empty_arr")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
        assert!(parsed.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_handles_null_as_nan() {
        let parsed = Json::parse("{\"v\": null}").unwrap();
        assert!(parsed.get("v").unwrap().as_f64().unwrap().is_nan());
    }
}
