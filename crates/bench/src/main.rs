//! Benchmark driver: measures the erasure-coding kernels, every code's
//! encode/decode throughput, and the buffer-oriented API (zero-alloc
//! `encode_into`, striped parallel encoding, single-share `repair`), prints
//! tables, and writes `BENCH_codes.json`.
//!
//! ```text
//! bench [--smoke] [--no-assert] [--baseline <path>] [--bless]
//! bench --cluster
//! bench --metrics-demo
//! ```
//!
//! `--baseline <path>` reads a previously committed `BENCH_codes.json`
//! *before* this run overwrites it and fails (exit 1) on a confirmed
//! encode/decode regression: rows more than 10% below the baseline are
//! re-measured (best sample kept, up to three rounds) and condemned only
//! if still more than 20% down — shared runners drift past 10% on noise
//! alone. `--bless` skips the comparison so the freshly written file
//! becomes the new baseline.
//!
//! `--cluster` runs the closed-loop fault-injection scenarios
//! ([`rain_storage::builtin_scenarios`]) and the sharded membership-churn
//! scenarios ([`rain_cluster::builtin_churn_specs`]) instead of the
//! throughput benches and writes per-scenario p50/p99/p999 retrieve
//! latency, fault counters, rebalance economics (groups moved,
//! symbols-per-group), and the full telemetry snapshot of each scenario's
//! registry to `BENCH_cluster.json` (schema `rain-bench-cluster/v3`).
//! Scenario time is *virtual*, so the file is bit-deterministic: CI
//! regenerates it and fails on any drift
//! (`git diff --exit-code BENCH_cluster.json`); after an intentional
//! behaviour change, re-run `bench --cluster` and commit the new file —
//! that is the bless path. In release builds the
//! cluster run also measures the cost of the telemetry layer itself and
//! fails if an attached recorder costs more than 2% of store throughput.
//!
//! `--metrics-demo` stores and retrieves one object through a chaos
//! transport with an attached registry, then prints the span tree and
//! metrics snapshot — a human-readable tour of the telemetry layer.
//!
//! See the crate docs ([`bench`]) for the kernel-speedup assertion this
//! binary also enforces in release builds.

use std::sync::Arc;

use bench::{throughput_mb_s, BenchConfig, Json};
use rain_cluster::{builtin_churn_specs, run_churn_scenario_observed};
use rain_codes::gf256::Gf256;
use rain_codes::xor;
use rain_codes::{
    BCode, ErasureCode, EvenOdd, Mirroring, ReedSolomon, ShareSet, SingleParity, StripedCodec,
    XCode,
};
use rain_obs::{render_spans, Recorder, Registry, VirtualClock};
use rain_sim::{Fault, FaultPlan, NodeId, SimDuration, SimTime};
use std::path::Path;

use rain_storage::{
    builtin_scenarios, run_scenario_observed, ChaosTransport, DistributedStore, FaultPolicy,
    FaultSpec, FaultyFile, FileLog, FsyncPolicy, GroupConfig, LogBackend, SelectionPolicy,
    WriteAheadLog,
};

/// Kernel speedups below this factor fail the run (release builds only).
const REQUIRED_KERNEL_SPEEDUP: f64 = 4.0;
/// Block size at which the speedup requirement is enforced.
const ASSERT_BLOCK: usize = 64 * 1024;
/// Object size at which the zero-alloc `encode_into` must beat `encode`
/// (small objects are where per-call share allocation dominates).
const API_BLOCK: usize = 4 * 1024;
/// Block size for the striped-vs-single-thread and repair comparisons.
const BIG_BLOCK: usize = 1024 * 1024;
/// Stripe length used by the striped rows.
const STRIPE_BYTES: usize = 64 * 1024;
/// Baseline rows this much slower than the committed numbers are SUSPECTS:
/// re-measured (best sample kept) before any verdict.
const REGRESSION_TOLERANCE: f64 = 0.10;
/// A suspect whose best sample across all confirmation rounds is still this
/// far below the baseline fails the run. Wider than the screening tolerance
/// because shared 1-vCPU runners drift +/-12% over minutes — a 10% verdict
/// threshold flakes on noise, while the regressions this gate exists to
/// catch (losing a SIMD dispatch, an algorithmic slip) cost 2x, not 20%.
const CONFIRM_TOLERANCE: f64 = 0.20;
/// Floor for the encode_into-vs-encode and striped-vs-single asserts: a
/// statistical tie (run-to-run noise around 1.0x) must not fail the run,
/// only a real loss. Repair keeps a strict > 1.0 — its margin is ~5x.
const API_WIN_FLOOR: f64 = 0.95;
/// The grouped small-object store path must beat the per-object path by at
/// least this factor at [`GROUPED_ASSERT_OBJECT`]-byte objects.
const REQUIRED_GROUPED_STORE_SPEEDUP: f64 = 2.0;
/// Object size at which the grouped-store speedup is enforced.
const GROUPED_ASSERT_OBJECT: usize = 1024;
/// Objects stored/retrieved/repaired per measured batch in the grouped
/// comparison.
const GROUPED_OBJECTS: usize = 64;

fn main() {
    let mut smoke = false;
    let mut no_assert = false;
    let mut bless = false;
    let mut cluster = false;
    let mut metrics_demo = false;
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--no-assert" => no_assert = true,
            "--bless" => bless = true,
            "--cluster" => cluster = true,
            "--metrics-demo" => metrics_demo = true,
            "--baseline" => match args.next() {
                Some(path) => baseline_path = Some(path),
                None => usage_error("--baseline needs a path"),
            },
            other => usage_error(&format!("unknown argument: {other}")),
        }
    }
    if metrics_demo {
        run_metrics_demo();
        return;
    }
    if cluster {
        run_cluster_bench(no_assert);
        return;
    }
    let config = if smoke {
        BenchConfig::smoke()
    } else {
        BenchConfig::full()
    };

    // Read the committed baseline before this run overwrites the file.
    let baseline = baseline_path.as_deref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("reading baseline {path}: {e}"));
        Json::parse(&text).unwrap_or_else(|e| panic!("parsing baseline {path}: {e}"))
    });

    println!(
        "rain bench ({} mode, {} build)",
        if smoke { "smoke" } else { "full" },
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        }
    );

    let kernel_blocks: &[usize] = if smoke {
        &[ASSERT_BLOCK]
    } else {
        &[4 * 1024, ASSERT_BLOCK, 1024 * 1024]
    };
    let kernels = bench_kernels(&config, kernel_blocks);

    let code_block_targets: &[usize] = if smoke {
        &[ASSERT_BLOCK]
    } else {
        &[ASSERT_BLOCK, BIG_BLOCK]
    };
    // Rows that get diffed against the committed baseline need full-length
    // measurement windows even in smoke mode: 0.02 s timings jitter past the
    // 10% regression threshold on shared runners.
    let codes_config = if baseline.is_some() && !bless {
        BenchConfig::full()
    } else {
        config
    };
    let codes = bench_codes(&codes_config, code_block_targets);

    let api = bench_api(&config);
    let striped = bench_striped(&config);
    let repair = bench_repair(&config);
    let grouped = bench_grouped(&config, smoke);
    let recovery = bench_recovery(smoke);

    let doc = Json::obj(vec![
        ("schema", Json::Str("rain-bench-codes/v2".into())),
        (
            "config",
            Json::obj(vec![
                ("smoke", Json::Bool(smoke)),
                ("optimized_build", Json::Bool(!cfg!(debug_assertions))),
                (
                    "gf_bulk_kernel",
                    Json::Str(rain_codes::gf256::active_bulk_kernel().into()),
                ),
                ("min_seconds", Json::Num(config.min_seconds)),
                (
                    "required_kernel_speedup",
                    Json::Num(REQUIRED_KERNEL_SPEEDUP),
                ),
                ("workers", Json::Int(default_workers() as i64)),
            ]),
        ),
        (
            "kernels",
            Json::Arr(kernels.iter().map(kernel_json).collect()),
        ),
        ("codes", Json::Arr(codes)),
        (
            "api",
            Json::Arr(api.iter().map(Comparison::to_json).collect()),
        ),
        (
            "striped",
            Json::Arr(striped.iter().map(Comparison::to_json).collect()),
        ),
        (
            "repair",
            Json::Arr(repair.iter().map(Comparison::to_json).collect()),
        ),
        (
            "grouped",
            Json::Arr(grouped.iter().map(GroupedRow::to_json).collect()),
        ),
        ("recovery", recovery),
    ]);
    let path = "BENCH_codes.json";
    std::fs::write(path, doc.render()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path}");

    if let Some(baseline) = &baseline {
        if bless {
            println!("--bless: skipping the baseline diff; {path} is the new baseline");
        } else {
            diff_against_baseline(&doc, baseline, &codes_config);
        }
    }

    enforce_speedups(&kernels, no_assert);
    enforce_api_wins(&api, &striped, &repair, no_assert);
    enforce_grouped_wins(&grouped, no_assert);
}

fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: bench [--smoke] [--no-assert] [--baseline <path>] [--bless] [--cluster] \
         [--metrics-demo]"
    );
    std::process::exit(2);
}

/// Run every builtin fault-injection scenario closed-loop, print the
/// per-scenario summary, and write `BENCH_cluster.json`. Each scenario gets
/// its own telemetry registry whose snapshot is embedded in the row. All
/// scenario time is virtual (the store's recorder runs on a virtual clock),
/// so the output is bit-deterministic — the committed file is its own
/// baseline and CI diffs it exactly.
fn run_cluster_bench(no_assert: bool) {
    println!("rain bench (cluster fault scenarios, virtual time)");
    println!(
        "\nscenario             retrieves  degraded  unavail  hedged  retries  p50 us  p99 us  \
         p999 us"
    );
    let mut rows = Vec::new();
    for sc in builtin_scenarios() {
        let registry = Registry::new();
        let r = run_scenario_observed(&sc, &registry).expect("builtin scenario must run");
        assert_eq!(r.wrong_bytes, 0, "{}: served wrong bytes", r.name);
        assert_eq!(
            r.ok + r.unavailable,
            r.retrieves,
            "{}: retrieves unaccounted for",
            r.name
        );
        println!(
            "{:<20}  {:>8}  {:>8}  {:>7}  {:>6}  {:>7}  {:>6}  {:>6}  {:>7}",
            r.name,
            r.retrieves,
            r.degraded,
            r.unavailable,
            r.hedged,
            r.retries,
            r.p50_us,
            r.p99_us,
            r.p999_us
        );
        let metrics = Json::parse(&registry.snapshot().to_json())
            .expect("registry snapshot must render valid JSON");
        rows.push(Json::obj(vec![
            ("scenario", Json::Str(r.name.clone())),
            ("retrieves", Json::Int(r.retrieves as i64)),
            ("ok", Json::Int(r.ok as i64)),
            ("degraded", Json::Int(r.degraded as i64)),
            ("unavailable", Json::Int(r.unavailable as i64)),
            ("wrong_bytes", Json::Int(r.wrong_bytes as i64)),
            ("local_hits", Json::Int(r.local_hits as i64)),
            ("hedged", Json::Int(r.hedged as i64)),
            ("retries", Json::Int(r.retries as i64)),
            ("stores_failed", Json::Int(r.stores_failed as i64)),
            ("repairs", Json::Int(r.repairs as i64)),
            ("installs_completed", Json::Int(r.installs_completed as i64)),
            ("p50_us", Json::Int(r.p50_us as i64)),
            ("p99_us", Json::Int(r.p99_us as i64)),
            ("p999_us", Json::Int(r.p999_us as i64)),
            ("max_us", Json::Int(r.max_us as i64)),
            ("transport_attempts", Json::Int(r.transport_attempts as i64)),
            ("transport_lost", Json::Int(r.transport_lost as i64)),
            (
                "transport_corrupted",
                Json::Int(r.transport_corrupted as i64),
            ),
            ("metrics", metrics),
        ]));
    }
    // The sharded rows: the same closed-loop discipline, but across many
    // coordinators with membership churn, leader elections, and
    // group-granularity rebalancing in the loop.
    println!(
        "\nsharded scenario      writes  retrieves  exact  unavail  groups  wholes  symbols  \
         s/unit  epoch"
    );
    let mut sharded = Vec::new();
    for spec in builtin_churn_specs() {
        let registry = Registry::new();
        let r = run_churn_scenario_observed(&spec, &registry);
        assert_eq!(r.wrong_bytes, 0, "{}: served wrong bytes", r.name);
        assert_eq!(r.missing, 0, "{}: lost an acked object", r.name);
        assert_eq!(
            r.bit_exact + r.unavailable,
            r.retrieves,
            "{}: retrieves unaccounted for",
            r.name
        );
        println!(
            "{:<20}  {:>6}  {:>9}  {:>5}  {:>7}  {:>6}  {:>6}  {:>7}  {:>6.1}  {:>5}",
            r.name,
            r.writes_ok,
            r.retrieves,
            r.bit_exact,
            r.unavailable,
            r.groups_moved,
            r.wholes_moved,
            r.symbols_transferred,
            r.symbols_per_group,
            r.final_epoch
        );
        let metrics = Json::parse(&registry.snapshot().to_json())
            .expect("registry snapshot must render valid JSON");
        sharded.push(Json::obj(vec![
            ("scenario", Json::Str(r.name.clone())),
            ("final_epoch", Json::Int(r.final_epoch as i64)),
            ("writes_ok", Json::Int(r.writes_ok as i64)),
            ("writes_unavailable", Json::Int(r.writes_unavailable as i64)),
            (
                "stale_writes_rejected",
                Json::Int(r.stale_writes_rejected as i64),
            ),
            ("forwarded_reads", Json::Int(r.forwarded_reads as i64)),
            ("dual_writes", Json::Int(r.dual_writes as i64)),
            ("retrieves", Json::Int(r.retrieves as i64)),
            ("bit_exact", Json::Int(r.bit_exact as i64)),
            ("unavailable", Json::Int(r.unavailable as i64)),
            ("wrong_bytes", Json::Int(r.wrong_bytes as i64)),
            ("missing", Json::Int(r.missing as i64)),
            ("groups_moved", Json::Int(r.groups_moved as i64)),
            ("wholes_moved", Json::Int(r.wholes_moved as i64)),
            (
                "symbols_transferred",
                Json::Int(r.symbols_transferred as i64),
            ),
            ("symbols_per_group", Json::Num(r.symbols_per_group)),
            ("transfer_skips", Json::Int(r.transfer_skips as i64)),
            ("handover_aborts", Json::Int(r.handover_aborts as i64)),
            ("leader_changes", Json::Int(r.leader_changes as i64)),
            ("regenerations", Json::Int(r.regenerations as i64)),
            ("tokens_received", Json::Int(r.tokens_received as i64)),
            ("metrics", metrics),
        ]));
    }
    let doc = Json::obj(vec![
        ("schema", Json::Str("rain-bench-cluster/v3".into())),
        ("scenarios", Json::Arr(rows)),
        ("sharded", Json::Arr(sharded)),
    ]);
    let path = "BENCH_cluster.json";
    std::fs::write(path, doc.render()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path} (deterministic: diff it against the committed baseline)");
    enforce_recorder_overhead(no_assert);
}

/// Maximum fraction of store throughput the telemetry layer may cost when a
/// recorder is attached: the observed path must keep at least this ratio of
/// the unobserved path's rate.
const RECORDER_OVERHEAD_FLOOR: f64 = 0.98;
/// Object size of the overhead measurement: large enough that a store does
/// real encoding work, small enough for many iterations per window.
const OVERHEAD_OBJECT: usize = 256 * 1024;

/// Measure steady-state whole-object store throughput with the recorder
/// enabled vs disabled and fail (release builds only) if telemetry costs
/// more than 2%. ONE store instance is measured and only its recorder is
/// toggled between windows, so allocator layout, share-set buffers, and
/// node maps are identical on both sides — the telemetry layer is the only
/// variable. Short interleaved windows keep the best sample each;
/// interference only ever slows a window down, so best-of comparison
/// cancels scheduler noise.
fn enforce_recorder_overhead(no_assert: bool) {
    if cfg!(debug_assertions) || no_assert {
        println!("skipping the recorder-overhead check (debug build or --no-assert)");
        return;
    }
    let payload: Vec<u8> = (0..OVERHEAD_OBJECT).map(|i| (i * 23 + 5) as u8).collect();
    let mut store = DistributedStore::new(Arc::new(ReedSolomon::new(6, 4).unwrap()));
    let enabled = Recorder::new(Registry::new(), Arc::new(VirtualClock::new()));
    let window = BenchConfig {
        min_seconds: 0.025,
        warmup_iters: 1,
    };
    // Warmup with the recorder on: fault in the share-set and histogram
    // allocations so no window pays first-touch costs.
    store.set_recorder(enabled.clone());
    for _ in 0..8 {
        store.store("overhead", &payload).unwrap();
    }
    let mut plain_best: f64 = 0.0;
    let mut observed_best: f64 = 0.0;
    // Screen with short windows; if that reads over the floor, confirm with
    // triple-length windows before condemning — shared runners jitter more
    // than the 2% budget, and folding in more best-of samples can clear a
    // noisy screen but can never hide a real regression.
    for (rounds, config) in [
        (6, window),
        (
            6,
            BenchConfig {
                min_seconds: window.min_seconds * 3.0,
                warmup_iters: 2,
            },
        ),
    ] {
        for _ in 0..rounds {
            store.set_recorder(Recorder::disabled());
            plain_best = plain_best.max(throughput_mb_s(&config, payload.len(), || {
                store.store("overhead", &payload).unwrap();
            }));
            store.set_recorder(enabled.clone());
            observed_best = observed_best.max(throughput_mb_s(&config, payload.len(), || {
                store.store("overhead", &payload).unwrap();
            }));
        }
        if observed_best / plain_best >= RECORDER_OVERHEAD_FLOOR {
            break;
        }
    }
    let ratio = observed_best / plain_best;
    assert!(
        ratio >= RECORDER_OVERHEAD_FLOOR,
        "telemetry overhead: store with recorder runs at {observed_best:.0} MB/s vs \
         {plain_best:.0} MB/s without ({:.1}% loss; at most {:.0}% is allowed)",
        (1.0 - ratio) * 100.0,
        (1.0 - RECORDER_OVERHEAD_FLOOR) * 100.0
    );
    println!(
        "ok: attached recorder keeps {:.1}% of store throughput at {} objects \
         (floor {:.0}%)",
        ratio * 100.0,
        human_size(OVERHEAD_OBJECT),
        RECORDER_OVERHEAD_FLOOR * 100.0
    );
}

/// Store and retrieve one object through a chaos transport with a crashed
/// node, then print what the telemetry layer saw: the span tree of the
/// store/retrieve (per-phase virtual-time durations) and the full metrics
/// snapshot — counters, gauges, and latency histograms across the store,
/// transport, and codes layers.
fn run_metrics_demo() {
    println!("rain bench (metrics demo: one chaos retrieve, virtual time)\n");
    let registry = Registry::new();
    let mut store = DistributedStore::new(Arc::new(ReedSolomon::new(6, 4).unwrap()));
    store.attach_registry(&registry);
    // A six-node chaos fabric where node 2 is down for the whole run: the
    // retrieve has to read around it and comes back degraded.
    store.set_transport(Box::new(ChaosTransport::new(6, 7).with_plan(
        FaultPlan::none().at(SimTime::ZERO, Fault::NodeCrash(NodeId(2))),
    )));
    store.set_policy(FaultPolicy {
        // Tolerate one missing install ack, so the write lands while node 2
        // is down instead of demanding a full quorum.
        write_slack: 1,
        ..FaultPolicy::default()
    });
    let payload: Vec<u8> = (0..64 * 1024).map(|i| (i * 13 + 3) as u8).collect();
    store.store("demo", &payload).unwrap();
    let (bytes, report) = store
        .retrieve("demo", SelectionPolicy::Nearest)
        .expect("five of six nodes are up");
    assert_eq!(bytes, payload, "chaos must not corrupt the object");
    store.publish_gauges();
    println!(
        "retrieve: {} bytes, degraded={}, latency={}us\n",
        bytes.len(),
        report.degraded,
        report.latency.as_micros()
    );
    println!("spans (virtual time):");
    print!("{}", render_spans(&registry.spans()));
    println!("\nmetrics snapshot:");
    print!("{}", registry.snapshot().to_text());
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(1)
}

/// One measured kernel comparison.
struct KernelResult {
    name: &'static str,
    block_bytes: usize,
    fast_mb_s: f64,
    scalar_mb_s: f64,
}

impl KernelResult {
    fn speedup(&self) -> f64 {
        self.fast_mb_s / self.scalar_mb_s
    }
}

fn kernel_json(r: &KernelResult) -> Json {
    Json::obj(vec![
        ("kernel", Json::Str(r.name.into())),
        ("block_bytes", Json::Int(r.block_bytes as i64)),
        ("fast_mb_s", Json::Num(r.fast_mb_s)),
        ("scalar_mb_s", Json::Num(r.scalar_mb_s)),
        ("speedup", Json::Num(r.speedup())),
    ])
}

/// A generic two-way comparison row (API / striped / repair sections).
struct Comparison {
    code: &'static str,
    n: usize,
    k: usize,
    data_bytes: usize,
    baseline_label: &'static str,
    baseline_mb_s: f64,
    candidate_label: &'static str,
    candidate_mb_s: f64,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.candidate_mb_s / self.baseline_mb_s
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("code", Json::Str(self.code.into())),
            ("n", Json::Int(self.n as i64)),
            ("k", Json::Int(self.k as i64)),
            ("data_bytes", Json::Int(self.data_bytes as i64)),
            (self.baseline_label, Json::Num(self.baseline_mb_s)),
            (self.candidate_label, Json::Num(self.candidate_mb_s)),
            ("speedup", Json::Num(self.speedup())),
        ])
    }

    fn print(&self) {
        println!(
            "{:<13}  ({:>2},{:>2})  {:>7}  {:>11.0}  {:>11.0}  {:>6.2}x",
            self.code,
            self.n,
            self.k,
            human_size(self.data_bytes),
            self.baseline_mb_s,
            self.candidate_mb_s,
            self.speedup()
        );
    }
}

/// Measure the word-wide kernels against their retained scalar baselines.
fn bench_kernels(config: &BenchConfig, blocks: &[usize]) -> Vec<KernelResult> {
    let gf = Gf256::new();
    let mut results = Vec::new();
    println!("\nkernel                block      fast MB/s    scalar MB/s  speedup");
    for &size in blocks {
        let src: Vec<u8> = (0..size).map(|i| (i * 31 + 7) as u8).collect();
        let mut dst = vec![0u8; size];

        let fast = throughput_mb_s(config, size, || xor::xor_into(&mut dst, &src));
        let scalar = throughput_mb_s(config, size, || xor::scalar_xor_into(&mut dst, &src));
        push_kernel(&mut results, "xor_into", size, fast, scalar);

        // A representative "awkward" coefficient: high bit set, not a power
        // of two, so the reduction polynomial is exercised.
        let c = 0x8e;
        let table = gf.mul_table(c);
        let fast = throughput_mb_s(config, size, || table.mul_acc(&mut dst, &src));
        let scalar = throughput_mb_s(config, size, || gf.scalar_mul_acc_slice(&mut dst, &src, c));
        push_kernel(&mut results, "mul_acc_slice", size, fast, scalar);
    }
    results
}

fn push_kernel(
    results: &mut Vec<KernelResult>,
    name: &'static str,
    block_bytes: usize,
    fast_mb_s: f64,
    scalar_mb_s: f64,
) {
    let r = KernelResult {
        name,
        block_bytes,
        fast_mb_s,
        scalar_mb_s,
    };
    println!(
        "{:<20}  {:>7}  {:>11.0}  {:>13.0}  {:>6.2}x",
        r.name,
        human_size(r.block_bytes),
        r.fast_mb_s,
        r.scalar_mb_s,
        r.speedup()
    );
    results.push(r);
}

/// The code points measured by the encode/decode throughput table.
fn code_zoo() -> Vec<(&'static str, Box<dyn ErasureCode>)> {
    vec![
        ("reed-solomon", Box::new(ReedSolomon::new(6, 4).unwrap())),
        ("reed-solomon", Box::new(ReedSolomon::new(14, 10).unwrap())),
        ("evenodd", Box::new(EvenOdd::new(5).unwrap())),
        ("evenodd", Box::new(EvenOdd::new(11).unwrap())),
        ("x-code", Box::new(XCode::new(5).unwrap())),
        ("x-code", Box::new(XCode::new(11).unwrap())),
        ("b-code", Box::new(BCode::table_1a())),
        ("b-code", Box::new(BCode::new(10).unwrap())),
    ]
}

/// Round a target size up to the code's input unit.
fn sized_data(code: &dyn ErasureCode, target: usize) -> Vec<u8> {
    let unit = code.data_len_unit();
    let data_len = target.div_ceil(unit) * unit;
    (0..data_len).map(|i| (i * 131 + 17) as u8).collect()
}

/// Measure one code's encode/decode row (via the buffer-core API with
/// reused scratch, i.e. the storage layer's hot path).
fn measure_code_row(
    config: &BenchConfig,
    name: &str,
    code: &dyn ErasureCode,
    target: usize,
) -> Json {
    let data = sized_data(code, target);
    let data_len = data.len();

    let mut shares = ShareSet::new();
    let encode_mb_s = throughput_mb_s(config, data_len, || {
        code.encode_into(&data, &mut shares).unwrap();
        std::hint::black_box(&shares);
    });

    // Worst-case-style erasure: drop the first n-k columns so the decoder
    // has to reconstruct data (not just reassemble).
    let mut view = shares.as_view();
    for i in 0..code.n() - code.k() {
        view.clear(i);
    }
    let mut decoded = Vec::new();
    let decode_mb_s = throughput_mb_s(config, data_len, || {
        code.decode_into(&view, &mut decoded).unwrap();
        std::hint::black_box(&decoded);
    });

    println!(
        "{:<13}  ({:>2},{:>2})  {:>7}  {:>11.0}  {:>11.0}",
        name,
        code.n(),
        code.k(),
        human_size(data_len),
        encode_mb_s,
        decode_mb_s
    );
    Json::obj(vec![
        ("code", Json::Str(name.into())),
        ("n", Json::Int(code.n() as i64)),
        ("k", Json::Int(code.k() as i64)),
        ("data_bytes", Json::Int(data_len as i64)),
        ("encode_mb_s", Json::Num(encode_mb_s)),
        ("decode_mb_s", Json::Num(decode_mb_s)),
        (
            "encode_xors_per_data_byte",
            Json::Num(code.cost(data_len).encode_xors_per_data_byte()),
        ),
    ])
}

/// Measure encode/decode throughput for every code family.
fn bench_codes(config: &BenchConfig, block_targets: &[usize]) -> Vec<Json> {
    let codes = code_zoo();
    let mut out = Vec::new();
    println!("\ncode           (n,k)    block      encode MB/s  decode MB/s");
    for (name, code) in &codes {
        for &target in block_targets {
            out.push(measure_code_row(config, name, code.as_ref(), target));
        }
    }
    out
}

/// Zero-alloc proof: `encode_into` with a reused [`ShareSet`] vs the
/// allocating `encode`, at small-object size where allocation dominates.
/// All six code families go through the new API here.
fn bench_api(config: &BenchConfig) -> Vec<Comparison> {
    let families: Vec<(&'static str, Box<dyn ErasureCode>)> = vec![
        ("b-code", Box::new(BCode::table_1a())),
        ("x-code", Box::new(XCode::new(5).unwrap())),
        ("evenodd", Box::new(EvenOdd::new(5).unwrap())),
        ("reed-solomon", Box::new(ReedSolomon::new(6, 4).unwrap())),
        ("mirroring", Box::new(Mirroring::new(3))),
        ("single-parity", Box::new(SingleParity::new(5))),
    ];
    let mut rows = Vec::new();
    println!("\napi            (n,k)    block   encode MB/s  enc_into MB/s  speedup");
    for (name, code) in &families {
        let data = sized_data(code.as_ref(), API_BLOCK);
        let data_len = data.len();
        let alloc_mb_s = throughput_mb_s(config, data_len, || {
            let shares = code.encode(&data).unwrap();
            std::hint::black_box(&shares);
        });
        let mut shares = ShareSet::new();
        let into_mb_s = throughput_mb_s(config, data_len, || {
            code.encode_into(&data, &mut shares).unwrap();
            std::hint::black_box(&shares);
        });
        let row = Comparison {
            code: name,
            n: code.n(),
            k: code.k(),
            data_bytes: data_len,
            baseline_label: "encode_alloc_mb_s",
            baseline_mb_s: alloc_mb_s,
            candidate_label: "encode_into_mb_s",
            candidate_mb_s: into_mb_s,
        };
        row.print();
        rows.push(row);
    }
    rows
}

/// Striped parallel encoding vs the single-thread inner code at 1 MiB.
fn bench_striped(config: &BenchConfig) -> Vec<Comparison> {
    let inners: Vec<(&'static str, Arc<dyn ErasureCode>)> = vec![
        ("b-code", Arc::new(BCode::new(10).unwrap())),
        ("x-code", Arc::new(XCode::new(11).unwrap())),
        ("evenodd", Arc::new(EvenOdd::new(11).unwrap())),
        ("reed-solomon", Arc::new(ReedSolomon::new(14, 10).unwrap())),
    ];
    let workers = default_workers();
    let mut rows = Vec::new();
    println!(
        "\nstriped        (n,k)    block   single MB/s  striped MB/s  speedup  ({workers} workers)"
    );
    for (name, inner) in &inners {
        let data = sized_data(inner.as_ref(), BIG_BLOCK);
        let data_len = data.len();
        let unit = inner.data_len_unit();
        let stripe = STRIPE_BYTES.div_ceil(unit) * unit;
        let striped = StripedCodec::new(inner.clone(), stripe, workers).unwrap();

        let mut shares = ShareSet::new();
        let single_mb_s = throughput_mb_s(config, data_len, || {
            inner.encode_into(&data, &mut shares).unwrap();
            std::hint::black_box(&shares);
        });
        let striped_mb_s = throughput_mb_s(config, data_len, || {
            striped.encode_into(&data, &mut shares).unwrap();
            std::hint::black_box(&shares);
        });
        let row = Comparison {
            code: name,
            n: inner.n(),
            k: inner.k(),
            data_bytes: data_len,
            baseline_label: "single_mb_s",
            baseline_mb_s: single_mb_s,
            candidate_label: "striped_mb_s",
            candidate_mb_s: striped_mb_s,
        };
        row.print();
        rows.push(row);
    }
    rows
}

/// Single-share `repair` vs decode + re-encode (both through the zero-alloc
/// buffer API, so the difference is purely algorithmic).
fn bench_repair(config: &BenchConfig) -> Vec<Comparison> {
    let codes: Vec<(&'static str, Box<dyn ErasureCode>)> = vec![
        ("b-code", Box::new(BCode::new(10).unwrap())),
        ("x-code", Box::new(XCode::new(11).unwrap())),
        ("evenodd", Box::new(EvenOdd::new(11).unwrap())),
        ("reed-solomon", Box::new(ReedSolomon::new(14, 10).unwrap())),
    ];
    let mut rows = Vec::new();
    println!("\nrepair         (n,k)    block   dec+enc MB/s  repair MB/s  speedup");
    for (name, code) in &codes {
        let data = sized_data(code.as_ref(), BIG_BLOCK);
        let data_len = data.len();
        let mut shares = ShareSet::new();
        code.encode_into(&data, &mut shares).unwrap();
        let missing = 0usize;
        let mut view = shares.as_view();
        view.clear(missing);
        let mut out = vec![0u8; shares.share_len()];

        // The old repair_node path: full decode, then full re-encode, then
        // take the one share you wanted.
        let mut decoded = Vec::new();
        let mut reencoded = ShareSet::new();
        let decode_reencode_mb_s = throughput_mb_s(config, data_len, || {
            code.decode_into(&view, &mut decoded).unwrap();
            code.encode_into(&decoded, &mut reencoded).unwrap();
            out.copy_from_slice(reencoded.share(missing));
            std::hint::black_box(&out);
        });

        let repair_mb_s = throughput_mb_s(config, data_len, || {
            code.repair(&view, missing, &mut out).unwrap();
            std::hint::black_box(&out);
        });

        let row = Comparison {
            code: name,
            n: code.n(),
            k: code.k(),
            data_bytes: data_len,
            baseline_label: "decode_reencode_mb_s",
            baseline_mb_s: decode_reencode_mb_s,
            candidate_label: "repair_mb_s",
            candidate_mb_s: repair_mb_s,
        };
        row.print();
        rows.push(row);
    }
    rows
}

/// One grouped-vs-per-object comparison row.
struct GroupedRow {
    code: &'static str,
    op: &'static str,
    n: usize,
    k: usize,
    object_bytes: usize,
    objects: usize,
    per_object_mb_s: f64,
    grouped_mb_s: f64,
}

impl GroupedRow {
    fn speedup(&self) -> f64 {
        self.grouped_mb_s / self.per_object_mb_s
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("code", Json::Str(self.code.into())),
            ("op", Json::Str(self.op.into())),
            ("n", Json::Int(self.n as i64)),
            ("k", Json::Int(self.k as i64)),
            ("object_bytes", Json::Int(self.object_bytes as i64)),
            ("objects", Json::Int(self.objects as i64)),
            ("per_object_mb_s", Json::Num(self.per_object_mb_s)),
            ("grouped_mb_s", Json::Num(self.grouped_mb_s)),
            ("speedup", Json::Num(self.speedup())),
        ])
    }

    fn print(&self) {
        println!(
            "{:<13}  {:<8}  ({},{})  {:>6}  {:>13.1}  {:>11.1}  {:>6.2}x",
            self.code,
            self.op,
            self.n,
            self.k,
            human_size(self.object_bytes),
            self.per_object_mb_s,
            self.grouped_mb_s,
            self.speedup()
        );
    }
}

/// The grouping configuration used by the comparison: every measured
/// object size falls under the threshold, groups seal at 64 KiB.
fn grouped_bench_config() -> GroupConfig {
    GroupConfig {
        threshold: 8 * 1024,
        capacity: 64 * 1024,
        compact_watermark: 0.5,
        ..GroupConfig::disabled()
    }
}

/// Coding-group batching vs the per-object path, for small objects
/// (256 B – 4 KiB): steady-state store (overwrite churn included), read-out
/// of co-located objects, and whole-node repair. Throughput counts object
/// payload bytes, so the two paths are directly comparable.
fn bench_grouped(config: &BenchConfig, smoke: bool) -> Vec<GroupedRow> {
    let codes: Vec<(&'static str, Arc<dyn ErasureCode>)> = vec![
        ("b-code", Arc::new(BCode::table_1a())),
        ("reed-solomon", Arc::new(ReedSolomon::new(6, 4).unwrap())),
    ];
    let sizes: &[usize] = if smoke {
        &[GROUPED_ASSERT_OBJECT]
    } else {
        &[256, 1024, 4096]
    };
    let keys: Vec<String> = (0..GROUPED_OBJECTS).map(|i| format!("obj-{i}")).collect();
    let mut rows = Vec::new();
    println!(
        "\ngrouped        op        (n,k)   object  per-object MB/s  grouped MB/s  speedup  \
         ({GROUPED_OBJECTS} objects/batch)"
    );
    for (name, code) in &codes {
        for &size in sizes {
            let payload: Vec<u8> = (0..size).map(|i| (i * 37 + 11) as u8).collect();
            let batch_bytes = size * GROUPED_OBJECTS;

            // --- store ---------------------------------------------------
            let mut per_object = DistributedStore::new(code.clone());
            let per_object_store = throughput_mb_s(config, batch_bytes, || {
                for key in &keys {
                    per_object.store(key, &payload).unwrap();
                }
            });
            let mut grouped = DistributedStore::with_groups(code.clone(), grouped_bench_config());
            let grouped_store = throughput_mb_s(config, batch_bytes, || {
                for key in &keys {
                    grouped.store(key, &payload).unwrap();
                }
                grouped.flush().unwrap();
            });
            let row = GroupedRow {
                code: name,
                op: "store",
                n: code.n(),
                k: code.k(),
                object_bytes: size,
                objects: GROUPED_OBJECTS,
                per_object_mb_s: per_object_store,
                grouped_mb_s: grouped_store,
            };
            row.print();
            rows.push(row);

            // --- retrieve ------------------------------------------------
            // Both stores hold the final batch from the store measurement;
            // co-located grouped reads amortise to one decode per group.
            let per_object_retrieve = throughput_mb_s(config, batch_bytes, || {
                for key in &keys {
                    std::hint::black_box(
                        per_object.retrieve(key, SelectionPolicy::FirstK).unwrap(),
                    );
                }
            });
            let grouped_retrieve = throughput_mb_s(config, batch_bytes, || {
                for key in &keys {
                    std::hint::black_box(grouped.retrieve(key, SelectionPolicy::FirstK).unwrap());
                }
            });
            let row = GroupedRow {
                code: name,
                op: "retrieve",
                n: code.n(),
                k: code.k(),
                object_bytes: size,
                objects: GROUPED_OBJECTS,
                per_object_mb_s: per_object_retrieve,
                grouped_mb_s: grouped_retrieve,
            };
            row.print();
            rows.push(row);

            // --- repair --------------------------------------------------
            // Hot-swap one node and re-derive everything it should hold:
            // one reconstruction per object vs one per *group*.
            let target = NodeId(code.n() - 1);
            let per_object_repair = throughput_mb_s(config, batch_bytes, || {
                per_object.replace_node(target).unwrap();
                std::hint::black_box(per_object.repair_node(target).unwrap());
            });
            let grouped_repair = throughput_mb_s(config, batch_bytes, || {
                grouped.replace_node(target).unwrap();
                std::hint::black_box(grouped.repair_node(target).unwrap());
            });
            let row = GroupedRow {
                code: name,
                op: "repair",
                n: code.n(),
                k: code.k(),
                object_bytes: size,
                objects: GROUPED_OBJECTS,
                per_object_mb_s: per_object_repair,
                grouped_mb_s: grouped_repair,
            };
            row.print();
            rows.push(row);
        }
    }
    rows
}

/// Grouping configuration for the recovery rows: 48-byte objects are
/// grouped, groups seal at 4 KiB, the log lives in a real file.
fn recovery_bench_config(checkpoint_every: u64, fsync: FsyncPolicy) -> GroupConfig {
    GroupConfig {
        threshold: 256,
        capacity: 4096,
        compact_watermark: 0.5,
        ..GroupConfig::disabled()
    }
    .logged()
    .with_fsync(fsync)
    .with_checkpoint_every(checkpoint_every)
}

/// Recovery economics of the file-backed WAL. Three tables:
///
/// * **replay** — recovery time and replayed record count as the workload
///   history grows, with and without checkpoint truncation. The record
///   counts are deterministic and asserted here: uncheckpointed replay is
///   O(history), checkpointed replay is O(live state) — it must NOT grow
///   with the op count.
/// * **fsync_policy** — store wall-time under each [`FsyncPolicy`] on a
///   real file, plus the deterministic fsync/write-batch counts from an
///   identical run against the simulated file.
/// * **truncation** — the byte cost of checkpoint truncation in both
///   on-disk layouts. The single-file layout drops a prefix by rewriting
///   the surviving log through a temp file + rename, so its rewritten
///   byte count grows with the live log; the segmented layout unlinks
///   whole sealed segments and rewrites only its fixed 20-byte manifest.
///   Both counts are measured off disk and asserted: segmented stays
///   constant as the log grows, single-file does not.
///
/// Wall-times are informational (the baseline diff gates only the `codes`
/// rows); the record/sync/byte counts are the load-bearing numbers.
fn bench_recovery(smoke: bool) -> Json {
    let code: Arc<dyn ErasureCode> = Arc::new(BCode::table_1a());
    let dir = std::env::temp_dir().join(format!("rain-bench-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create recovery bench dir");
    let payload: Vec<u8> = (0..48).map(|i| (i * 19 + 3) as u8).collect();

    let lengths: &[usize] = if smoke {
        &[100, 400]
    } else {
        &[100, 400, 1600]
    };
    println!("\nrecovery       ckpt every     ops  replayed   log KiB  recover ms");
    let mut replay_rows = Vec::new();
    for &ops in lengths {
        for checkpoint_every in [0u64, 16] {
            let path = dir.join(format!("replay-{ops}-{checkpoint_every}.wal"));
            let _ = std::fs::remove_file(&path);
            let config = recovery_bench_config(checkpoint_every, FsyncPolicy::EveryN(8));
            let mut store = DistributedStore::with_wal_file(code.clone(), config, &path)
                .expect("open bench wal");
            for i in 0..ops {
                store.store(&format!("obj-{}", i % 8), &payload).unwrap();
            }
            store.sync_wal().unwrap();
            let wal_bytes = store.group_stats().wal_bytes;
            let (nodes, _discarded) = store.crash();
            let started = std::time::Instant::now();
            let wal = WriteAheadLog::new(Box::new(
                FileLog::open(&path, config.fsync).expect("reopen bench wal"),
            ));
            let (recovered, report) =
                DistributedStore::recover(code.clone(), config, nodes, wal).expect("recovery");
            let recover_ms = started.elapsed().as_secs_f64() * 1e3;
            assert_eq!(recovered.num_objects(), 8, "the working set survives");
            if checkpoint_every == 0 {
                assert!(
                    report.records_replayed >= ops,
                    "uncheckpointed replay is O(history): {} records for {ops} ops",
                    report.records_replayed
                );
            } else {
                assert!(
                    report.records_replayed as u64 <= 2 * checkpoint_every + 8,
                    "checkpointed replay must stay O(live state): {} records for {ops} ops",
                    report.records_replayed
                );
            }
            println!(
                "{:<13}  {:>10}  {:>6}  {:>8}  {:>8.1}  {:>10.2}",
                "file-wal",
                checkpoint_every,
                ops,
                report.records_replayed,
                wal_bytes as f64 / 1024.0,
                recover_ms
            );
            replay_rows.push(Json::obj(vec![
                ("checkpoint_every", Json::Int(checkpoint_every as i64)),
                ("ops", Json::Int(ops as i64)),
                (
                    "records_replayed",
                    Json::Int(report.records_replayed as i64),
                ),
                ("wal_bytes", Json::Int(wal_bytes as i64)),
                (
                    "checkpoint_restored",
                    Json::Bool(report.checkpoint_restored),
                ),
                ("recover_ms", Json::Num(recover_ms)),
            ]));
        }
    }

    let policies: [(&str, FsyncPolicy); 3] = [
        ("always", FsyncPolicy::Always),
        ("every-8-records", FsyncPolicy::EveryN(8)),
        (
            "every-2ms",
            FsyncPolicy::EveryT(SimDuration::from_millis(2)),
        ),
    ];
    let ops = if smoke { 128 } else { 512 };
    println!(
        "\nfsync policy        ops  elapsed ms     ops/s   fsyncs  writes  (counts simulated)"
    );
    let mut policy_rows = Vec::new();
    for (label, policy) in policies {
        // Wall-clock against a real file: what the durability schedule
        // actually costs on this machine's filesystem.
        let path = dir.join(format!("policy-{label}.wal"));
        let _ = std::fs::remove_file(&path);
        let config = recovery_bench_config(0, policy);
        let mut store =
            DistributedStore::with_wal_file(code.clone(), config, &path).expect("open bench wal");
        let started = std::time::Instant::now();
        for i in 0..ops {
            store.store(&format!("obj-{}", i % 8), &payload).unwrap();
            store.advance_time(SimDuration::from_millis(1));
        }
        store.sync_wal().unwrap();
        let elapsed = started.elapsed().as_secs_f64();

        // Deterministic schedule counts from an identical run against the
        // simulated file: how many fsyncs and write batches the policy
        // issued for the same op stream.
        let (file, handle) = FaultyFile::new(FaultSpec::default());
        let log = FileLog::with_raw(Box::new(file), policy).expect("fresh sim file");
        let mut sim = DistributedStore::with_wal(code.clone(), config, Box::new(log));
        for i in 0..ops {
            sim.store(&format!("obj-{}", i % 8), &payload).unwrap();
            sim.advance_time(SimDuration::from_millis(1));
        }
        sim.sync_wal().unwrap();

        println!(
            "{:<16}  {:>5}  {:>10.1}  {:>8.0}  {:>7}  {:>6}",
            label,
            ops,
            elapsed * 1e3,
            ops as f64 / elapsed,
            handle.syncs(),
            handle.writes()
        );
        policy_rows.push(Json::obj(vec![
            ("policy", Json::Str(label.into())),
            ("ops", Json::Int(ops as i64)),
            ("elapsed_ms", Json::Num(elapsed * 1e3)),
            ("ops_per_s", Json::Num(ops as f64 / elapsed)),
            ("fsyncs", Json::Int(handle.syncs() as i64)),
            ("write_batches", Json::Int(handle.writes() as i64)),
        ]));
    }
    let truncation_rows = bench_truncation(&dir, smoke);

    let _ = std::fs::remove_dir_all(&dir);
    Json::obj(vec![
        ("replay", Json::Arr(replay_rows)),
        ("fsync_policy", Json::Arr(policy_rows)),
        ("truncation", Json::Arr(truncation_rows)),
    ])
}

/// The `truncation` table of [`bench_recovery`]: append `records` frames,
/// then drop the first half of the log — once against a single file, once
/// against a segmented directory — and report what each layout had to
/// rewrite to do it. The rewritten byte counts come straight off disk
/// (surviving file size vs manifest size), so they are deterministic and
/// asserted: the segmented manifest rewrite is a constant 20 bytes at
/// every log size, while the single-file rewrite grows with the log.
fn bench_truncation(dir: &Path, smoke: bool) -> Vec<Json> {
    const RECORD_BYTES: usize = 128;
    const SEGMENT_BYTES: usize = 4096;
    let record: Vec<u8> = (0..RECORD_BYTES).map(|i| (i * 31 + 7) as u8).collect();
    let lengths: &[usize] = if smoke {
        &[256, 1024]
    } else {
        &[256, 1024, 4096]
    };

    println!("\ntruncation    records   dropped KiB  rewritten B  segs before/after  drop ms");
    let mut rows = Vec::new();
    for &records in lengths {
        let drop_len = (records / 2) * RECORD_BYTES;

        // Single file: the prefix drop rewrites the whole surviving log
        // through a temp file + rename.
        let path = dir.join(format!("trunc-{records}.wal"));
        let _ = std::fs::remove_file(&path);
        let mut single = FileLog::open(&path, FsyncPolicy::EveryN(64)).expect("open trunc wal");
        for _ in 0..records {
            single.append(&record).unwrap();
        }
        single.sync().unwrap();
        let started = std::time::Instant::now();
        single.drop_prefix(drop_len).unwrap();
        let single_ms = started.elapsed().as_secs_f64() * 1e3;
        let single_rewritten = std::fs::metadata(&path).expect("trunc wal survives").len();
        assert_eq!(
            single_rewritten as usize,
            records * RECORD_BYTES - drop_len,
            "a single-file prefix drop rewrites exactly the surviving log"
        );

        // Segmented: the same drop unlinks whole sealed segments and
        // rewrites only the fixed-size manifest.
        let seg_dir = dir.join(format!("trunc-{records}.wal.d"));
        let _ = std::fs::remove_dir_all(&seg_dir);
        let mut segmented =
            FileLog::open_segmented(&seg_dir, FsyncPolicy::EveryN(64), SEGMENT_BYTES)
                .expect("open trunc segments");
        for _ in 0..records {
            segmented.append(&record).unwrap();
        }
        segmented.sync().unwrap();
        let segs_before = count_segments(&seg_dir);
        let started = std::time::Instant::now();
        segmented.drop_prefix(drop_len).unwrap();
        let segmented_ms = started.elapsed().as_secs_f64() * 1e3;
        let segs_after = count_segments(&seg_dir);
        let manifest_rewritten = std::fs::metadata(seg_dir.join("wal.manifest"))
            .expect("manifest survives")
            .len();
        assert_eq!(
            manifest_rewritten, 20,
            "a segmented prefix drop rewrites only the 20-byte manifest, at every log size"
        );
        assert!(
            segs_after < segs_before,
            "the drop must unlink sealed segments ({segs_before} -> {segs_after})"
        );

        for (layout, rewritten, segs, ms) in [
            ("single-file", single_rewritten, (1usize, 1usize), single_ms),
            (
                "segmented",
                manifest_rewritten,
                (segs_before, segs_after),
                segmented_ms,
            ),
        ] {
            println!(
                "{:<12}  {:>7}  {:>12.1}  {:>11}  {:>8} / {:<5}  {:>7.3}",
                layout,
                records,
                drop_len as f64 / 1024.0,
                rewritten,
                segs.0,
                segs.1,
                ms
            );
            rows.push(Json::obj(vec![
                ("layout", Json::Str(layout.into())),
                ("records", Json::Int(records as i64)),
                ("record_bytes", Json::Int(RECORD_BYTES as i64)),
                ("dropped_bytes", Json::Int(drop_len as i64)),
                ("bytes_rewritten", Json::Int(rewritten as i64)),
                ("segments_before", Json::Int(segs.0 as i64)),
                ("segments_after", Json::Int(segs.1 as i64)),
                ("drop_ms", Json::Num(ms)),
            ]));
        }
    }
    rows
}

/// Count the `wal.NNNNNN.seg` files in a segmented log directory.
fn count_segments(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .expect("read segment dir")
        .filter(|e| {
            e.as_ref()
                .is_ok_and(|e| e.file_name().to_string_lossy().ends_with(".seg"))
        })
        .count()
}

/// Enforce the coding-group wins (release builds only, same rationale as
/// the other win checks).
fn enforce_grouped_wins(grouped: &[GroupedRow], no_assert: bool) {
    if cfg!(debug_assertions) || no_assert {
        println!("skipping the coding-group win checks (debug build or --no-assert)");
        return;
    }
    for r in grouped {
        if r.op == "store" {
            // Store rows are only gated at the headline object size: near
            // the grouping threshold (4 KiB objects under an 8 KiB
            // threshold) the per-object encode is already cheap and the
            // grouped path legitimately approaches parity — those rows are
            // recorded for the trend, not asserted.
            if r.object_bytes == GROUPED_ASSERT_OBJECT {
                assert!(
                    r.speedup() >= REQUIRED_GROUPED_STORE_SPEEDUP,
                    "grouped store ({:.0} MB/s) must be at least {}x the per-object path \
                     ({:.0} MB/s) for {} at {}",
                    r.grouped_mb_s,
                    REQUIRED_GROUPED_STORE_SPEEDUP,
                    r.per_object_mb_s,
                    r.code,
                    human_size(r.object_bytes)
                );
            }
        } else {
            assert!(
                r.speedup() >= API_WIN_FLOOR,
                "grouped {} ({:.0} MB/s) must not lose to the per-object path ({:.0} MB/s) \
                 for {} at {}",
                r.op,
                r.grouped_mb_s,
                r.per_object_mb_s,
                r.code,
                human_size(r.object_bytes)
            );
        }
    }
    println!(
        "ok: grouped store is >= {REQUIRED_GROUPED_STORE_SPEEDUP}x per-object at {} \
         (and grouped retrieve/repair never lose)",
        human_size(GROUPED_ASSERT_OBJECT)
    );
}

/// One row that measured slower than the committed baseline allows.
struct Regression {
    code: String,
    n: i64,
    k: i64,
    data_bytes: i64,
    messages: Vec<String>,
}

/// Compare encode/decode rows against the baseline. Returns the rows more
/// than `tolerance` below it and the number of compared measurements.
fn find_regressions(
    fresh_rows: &[Json],
    base_rows: &[Json],
    tolerance: f64,
) -> (Vec<Regression>, usize) {
    let key = |row: &Json| {
        (
            row.get("code").and_then(Json::as_str).map(str::to_string),
            row.get("n").and_then(Json::as_i64),
            row.get("k").and_then(Json::as_i64),
            row.get("data_bytes").and_then(Json::as_i64),
        )
    };
    let mut compared = 0;
    let mut regressions: Vec<Regression> = Vec::new();
    for row in fresh_rows {
        let Some(base) = base_rows.iter().find(|b| key(b) == key(row)) else {
            continue;
        };
        let mut messages = Vec::new();
        for metric in ["encode_mb_s", "decode_mb_s"] {
            let (Some(now), Some(then)) = (
                row.get(metric).and_then(Json::as_f64),
                base.get(metric).and_then(Json::as_f64),
            ) else {
                continue;
            };
            compared += 1;
            if now < then * (1.0 - tolerance) {
                messages.push(format!(
                    "{} ({},{}) @ {}: {metric} {then:.0} -> {now:.0} MB/s ({:+.1}%)",
                    row.get("code").and_then(Json::as_str).unwrap_or("?"),
                    row.get("n").and_then(Json::as_i64).unwrap_or(0),
                    row.get("k").and_then(Json::as_i64).unwrap_or(0),
                    human_size(row.get("data_bytes").and_then(Json::as_i64).unwrap_or(0) as usize),
                    (now / then - 1.0) * 100.0
                ));
            }
        }
        if !messages.is_empty() {
            regressions.push(Regression {
                code: row
                    .get("code")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                n: row.get("n").and_then(Json::as_i64).unwrap_or(0),
                k: row.get("k").and_then(Json::as_i64).unwrap_or(0),
                data_bytes: row.get("data_bytes").and_then(Json::as_i64).unwrap_or(0),
                messages,
            });
        }
    }
    (regressions, compared)
}

/// Compare this run's encode/decode rows against the committed baseline and
/// exit non-zero on a confirmed regression. A first-pass suspect (more than
/// [`REGRESSION_TOLERANCE`] down) is re-measured with a triple-length
/// budget, up to three rounds, keeping the BEST sample seen per metric —
/// interference only ever makes a window read slower than the true rate, so
/// one clean sample clears a row, while a real regression cannot produce a
/// fast sample. The verdict uses the wider [`CONFIRM_TOLERANCE`].
fn diff_against_baseline(fresh: &Json, baseline: &Json, config: &BenchConfig) {
    let empty: [Json; 0] = [];
    let fresh_rows = fresh.get("codes").and_then(Json::as_arr).unwrap_or(&empty);
    let base_rows = baseline
        .get("codes")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    let (mut regressions, compared) = find_regressions(fresh_rows, base_rows, REGRESSION_TOLERANCE);
    // Make partial coverage visible: smoke runs measure fewer block sizes
    // than a full-run baseline contains, and those rows are NOT checked.
    let fresh_key = |row: &Json| {
        (
            row.get("code").and_then(Json::as_str).map(str::to_string),
            row.get("n").and_then(Json::as_i64),
            row.get("k").and_then(Json::as_i64),
            row.get("data_bytes").and_then(Json::as_i64),
        )
    };
    let unmatched = base_rows
        .iter()
        .filter(|b| !fresh_rows.iter().any(|f| fresh_key(f) == fresh_key(b)))
        .count();
    if unmatched > 0 {
        println!(
            "baseline diff: note: {unmatched} baseline row(s) have no counterpart in this run \
             (smoke mode measures fewer block sizes) and were NOT checked"
        );
    }
    if !regressions.is_empty() {
        println!(
            "baseline diff: {} suspect row(s); re-measuring to rule out scheduler noise",
            regressions.len()
        );
        let confirm = BenchConfig {
            min_seconds: config.min_seconds * 3.0,
            warmup_iters: config.warmup_iters.max(2),
        };
        let zoo = code_zoo();
        // Best sample seen so far for each suspect row, seeded from the
        // first pass. Each confirmation round re-measures the rows still
        // failing and folds the new samples in as an elementwise max.
        let mut best: Vec<Json> = regressions
            .iter()
            .filter_map(|r| {
                fresh_rows
                    .iter()
                    .find(|f| {
                        f.get("code").and_then(Json::as_str) == Some(&r.code)
                            && f.get("n").and_then(Json::as_i64) == Some(r.n)
                            && f.get("k").and_then(Json::as_i64) == Some(r.k)
                            && f.get("data_bytes").and_then(Json::as_i64) == Some(r.data_bytes)
                    })
                    .cloned()
            })
            .collect();
        let mut unconfirmable = Vec::new();
        for _round in 0..3 {
            for regression in regressions.drain(..) {
                // Every fresh row comes from code_zoo(), so the lookup holds
                // for any row this binary produced; a row it cannot
                // re-measure stays failed rather than silently passing.
                match zoo.iter().find(|(name, code)| {
                    *name == regression.code
                        && code.n() as i64 == regression.n
                        && code.k() as i64 == regression.k
                }) {
                    Some((name, code)) => {
                        let row = measure_code_row(
                            &confirm,
                            name,
                            code.as_ref(),
                            regression.data_bytes as usize,
                        );
                        let kept = best.iter_mut().find(|b| fresh_key(b) == fresh_key(&row));
                        match kept {
                            Some(Json::Obj(pairs)) => {
                                for (key, value) in pairs.iter_mut() {
                                    if !key.ends_with("_mb_s") {
                                        continue;
                                    }
                                    let new = row.get(key).and_then(Json::as_f64).unwrap_or(0.0);
                                    if value.as_f64().unwrap_or(0.0) < new {
                                        *value = Json::Num(new);
                                    }
                                }
                            }
                            _ => best.push(row),
                        }
                    }
                    None => {
                        let seen = unconfirmable.iter().any(|u: &Regression| {
                            u.code == regression.code
                                && u.n == regression.n
                                && u.k == regression.k
                                && u.data_bytes == regression.data_bytes
                        });
                        if !seen {
                            unconfirmable.push(regression);
                        }
                    }
                }
            }
            (regressions, _) = find_regressions(&best, base_rows, CONFIRM_TOLERANCE);
            if regressions.is_empty() {
                break;
            }
        }
        // A row that could not be re-measured is failed outright (it may
        // also still sit in `regressions` via its seeded first-pass row —
        // report it once).
        for u in unconfirmable {
            let dup = regressions.iter().any(|r| {
                r.code == u.code && r.n == u.n && r.k == u.k && r.data_bytes == u.data_bytes
            });
            if !dup {
                regressions.push(u);
            }
        }
    }
    if regressions.is_empty() {
        println!(
            "baseline diff: {compared} encode/decode measurements pass (screen {:.0}%, \
             confirmed verdicts at {:.0}%)",
            REGRESSION_TOLERANCE * 100.0,
            CONFIRM_TOLERANCE * 100.0
        );
        return;
    }
    eprintln!(
        "baseline diff: reproducible regressions of more than {:.0}%:",
        CONFIRM_TOLERANCE * 100.0
    );
    for r in regressions.iter().flat_map(|r| r.messages.iter()) {
        eprintln!("  {r}");
    }
    eprintln!("(re-run with --bless after an intentional change to regenerate the baseline)");
    std::process::exit(1);
}

/// Enforce the in-tree speedup requirement (release builds only: debug
/// timings say nothing about the kernels).
fn enforce_speedups(kernels: &[KernelResult], no_assert: bool) {
    let enforced = kernels
        .iter()
        .filter(|r| r.block_bytes == ASSERT_BLOCK)
        .collect::<Vec<_>>();
    assert!(
        !enforced.is_empty(),
        "no kernel measurements at the {ASSERT_BLOCK}-byte assertion block size"
    );
    if cfg!(debug_assertions) {
        println!("debug build: skipping the {REQUIRED_KERNEL_SPEEDUP}x kernel speedup check");
        return;
    }
    if no_assert {
        println!("--no-assert: skipping the {REQUIRED_KERNEL_SPEEDUP}x kernel speedup check");
        return;
    }
    for r in enforced {
        // The GF bulk multiply only clears the SIMD-level bar when a SIMD
        // kernel is dispatched; the portable lane fallback (non-x86, or x86
        // without AVX2) trades lookups per byte much like the scalar
        // baseline and is covered by correctness tests instead.
        if r.name == "mul_acc_slice" && rain_codes::gf256::active_bulk_kernel() == "portable" {
            println!(
                "note: {} uses the portable fallback kernel on this CPU; \
                 skipping its {REQUIRED_KERNEL_SPEEDUP}x check ({:.2}x measured)",
                r.name,
                r.speedup()
            );
            continue;
        }
        assert!(
            r.speedup() >= REQUIRED_KERNEL_SPEEDUP,
            "{} is only {:.2}x its scalar baseline at {} (required: {}x)",
            r.name,
            r.speedup(),
            human_size(r.block_bytes),
            REQUIRED_KERNEL_SPEEDUP
        );
        println!(
            "ok: {} is {:.2}x its scalar baseline at {}",
            r.name,
            r.speedup(),
            human_size(r.block_bytes)
        );
    }
}

/// Enforce the buffer-API wins (release builds only, same rationale).
fn enforce_api_wins(
    api: &[Comparison],
    striped: &[Comparison],
    repair: &[Comparison],
    no_assert: bool,
) {
    if cfg!(debug_assertions) || no_assert {
        println!("skipping the buffer-API win checks (debug build or --no-assert)");
        return;
    }
    for r in api {
        assert!(
            r.speedup() >= API_WIN_FLOOR,
            "encode_into ({:.0} MB/s) must not lose to the allocating encode \
             ({:.0} MB/s) for {} at {}",
            r.candidate_mb_s,
            r.baseline_mb_s,
            r.code,
            human_size(r.data_bytes)
        );
    }
    println!(
        "ok: encode_into beats the allocating encode for all {} families at {}",
        api.len(),
        human_size(API_BLOCK)
    );
    for r in repair {
        assert!(
            r.speedup() > 1.0,
            "repair ({:.0} MB/s) must beat decode+re-encode ({:.0} MB/s) for {} at {}",
            r.candidate_mb_s,
            r.baseline_mb_s,
            r.code,
            human_size(r.data_bytes)
        );
    }
    println!(
        "ok: single-share repair beats decode+re-encode for all {} codes at {}",
        repair.len(),
        human_size(BIG_BLOCK)
    );
    if default_workers() > 1 {
        for r in striped {
            assert!(
                r.speedup() >= API_WIN_FLOOR,
                "striped encoding ({:.0} MB/s) must not lose to single-thread \
                 ({:.0} MB/s) for {} with {} workers",
                r.candidate_mb_s,
                r.baseline_mb_s,
                r.code,
                default_workers()
            );
        }
        println!(
            "ok: striped encoding beats single-thread for all {} codes at {}",
            striped.len(),
            human_size(BIG_BLOCK)
        );
    } else {
        println!(
            "note: only one CPU is available; striped rows are recorded but the \
             striped > single-thread check needs real parallelism and is skipped"
        );
    }
}

fn human_size(bytes: usize) -> String {
    if bytes.is_multiple_of(1024 * 1024) {
        format!("{}MiB", bytes / (1024 * 1024))
    } else if bytes.is_multiple_of(1024) {
        format!("{}KiB", bytes / 1024)
    } else {
        format!("{bytes}B")
    }
}
