//! Benchmark driver: measures the erasure-coding kernels and every code's
//! encode/decode throughput, prints a table, and writes `BENCH_codes.json`.
//!
//! See the crate docs ([`bench`]) for usage and the kernel-speedup assertion
//! this binary enforces in release builds.

use bench::{throughput_mb_s, BenchConfig, Json};
use rain_codes::gf256::Gf256;
use rain_codes::xor;
use rain_codes::{BCode, ErasureCode, EvenOdd, ReedSolomon, XCode};

/// Kernel speedups below this factor fail the run (release builds only).
const REQUIRED_KERNEL_SPEEDUP: f64 = 4.0;
/// Block size at which the speedup requirement is enforced.
const ASSERT_BLOCK: usize = 64 * 1024;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let no_assert = args.iter().any(|a| a == "--no-assert");
    if let Some(bad) = args
        .iter()
        .find(|a| !["--smoke", "--no-assert"].contains(&a.as_str()))
    {
        eprintln!("unknown argument: {bad}");
        eprintln!("usage: bench [--smoke] [--no-assert]");
        std::process::exit(2);
    }
    let config = if smoke {
        BenchConfig::smoke()
    } else {
        BenchConfig::full()
    };

    println!(
        "rain bench ({} mode, {} build)",
        if smoke { "smoke" } else { "full" },
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        }
    );

    let kernel_blocks: &[usize] = if smoke {
        &[ASSERT_BLOCK]
    } else {
        &[4 * 1024, ASSERT_BLOCK, 1024 * 1024]
    };
    let kernels = bench_kernels(&config, kernel_blocks);

    let code_block_targets: &[usize] = if smoke {
        &[ASSERT_BLOCK]
    } else {
        &[ASSERT_BLOCK, 1024 * 1024]
    };
    let codes = bench_codes(&config, code_block_targets);

    let doc = Json::obj(vec![
        ("schema", Json::Str("rain-bench-codes/v1".into())),
        (
            "config",
            Json::obj(vec![
                ("smoke", Json::Bool(smoke)),
                ("optimized_build", Json::Bool(!cfg!(debug_assertions))),
                (
                    "gf_bulk_kernel",
                    Json::Str(rain_codes::gf256::active_bulk_kernel().into()),
                ),
                ("min_seconds", Json::Num(config.min_seconds)),
                (
                    "required_kernel_speedup",
                    Json::Num(REQUIRED_KERNEL_SPEEDUP),
                ),
            ]),
        ),
        (
            "kernels",
            Json::Arr(kernels.iter().map(kernel_json).collect()),
        ),
        ("codes", Json::Arr(codes)),
    ]);
    let path = "BENCH_codes.json";
    std::fs::write(path, doc.render()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path}");

    enforce_speedups(&kernels, no_assert);
}

/// One measured kernel comparison.
struct KernelResult {
    name: &'static str,
    block_bytes: usize,
    fast_mb_s: f64,
    scalar_mb_s: f64,
}

impl KernelResult {
    fn speedup(&self) -> f64 {
        self.fast_mb_s / self.scalar_mb_s
    }
}

fn kernel_json(r: &KernelResult) -> Json {
    Json::obj(vec![
        ("kernel", Json::Str(r.name.into())),
        ("block_bytes", Json::Int(r.block_bytes as i64)),
        ("fast_mb_s", Json::Num(r.fast_mb_s)),
        ("scalar_mb_s", Json::Num(r.scalar_mb_s)),
        ("speedup", Json::Num(r.speedup())),
    ])
}

/// Measure the word-wide kernels against their retained scalar baselines.
fn bench_kernels(config: &BenchConfig, blocks: &[usize]) -> Vec<KernelResult> {
    let gf = Gf256::new();
    let mut results = Vec::new();
    println!("\nkernel                block      fast MB/s    scalar MB/s  speedup");
    for &size in blocks {
        let src: Vec<u8> = (0..size).map(|i| (i * 31 + 7) as u8).collect();
        let mut dst = vec![0u8; size];

        let fast = throughput_mb_s(config, size, || xor::xor_into(&mut dst, &src));
        let scalar = throughput_mb_s(config, size, || xor::scalar_xor_into(&mut dst, &src));
        push_kernel(&mut results, "xor_into", size, fast, scalar);

        // A representative "awkward" coefficient: high bit set, not a power
        // of two, so the reduction polynomial is exercised.
        let c = 0x8e;
        let table = gf.mul_table(c);
        let fast = throughput_mb_s(config, size, || table.mul_acc(&mut dst, &src));
        let scalar = throughput_mb_s(config, size, || gf.scalar_mul_acc_slice(&mut dst, &src, c));
        push_kernel(&mut results, "mul_acc_slice", size, fast, scalar);
    }
    results
}

fn push_kernel(
    results: &mut Vec<KernelResult>,
    name: &'static str,
    block_bytes: usize,
    fast_mb_s: f64,
    scalar_mb_s: f64,
) {
    let r = KernelResult {
        name,
        block_bytes,
        fast_mb_s,
        scalar_mb_s,
    };
    println!(
        "{:<20}  {:>7}  {:>11.0}  {:>13.0}  {:>6.2}x",
        r.name,
        human_size(r.block_bytes),
        r.fast_mb_s,
        r.scalar_mb_s,
        r.speedup()
    );
    results.push(r);
}

/// Measure encode/decode throughput for every code family.
fn bench_codes(config: &BenchConfig, block_targets: &[usize]) -> Vec<Json> {
    let codes: Vec<(&str, Box<dyn ErasureCode>)> = vec![
        ("reed-solomon", Box::new(ReedSolomon::new(6, 4).unwrap())),
        ("reed-solomon", Box::new(ReedSolomon::new(14, 10).unwrap())),
        ("evenodd", Box::new(EvenOdd::new(5).unwrap())),
        ("evenodd", Box::new(EvenOdd::new(11).unwrap())),
        ("x-code", Box::new(XCode::new(5).unwrap())),
        ("x-code", Box::new(XCode::new(11).unwrap())),
        ("b-code", Box::new(BCode::table_1a())),
        ("b-code", Box::new(BCode::new(10).unwrap())),
    ];

    let mut out = Vec::new();
    println!("\ncode           (n,k)    block      encode MB/s  decode MB/s");
    for (name, code) in &codes {
        for &target in block_targets {
            // Round the data size up to the code's unit.
            let unit = code.data_len_unit();
            let data_len = target.div_ceil(unit) * unit;
            let data: Vec<u8> = (0..data_len).map(|i| (i * 131 + 17) as u8).collect();

            let encode_mb_s = throughput_mb_s(config, data_len, || {
                let shares = code.encode(&data).unwrap();
                std::hint::black_box(&shares);
            });

            // Worst-case-style erasure: drop the first n-k columns so the
            // decoder has to reconstruct data (not just reassemble).
            let shares = code.encode(&data).unwrap();
            let mut partial: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
            for slot in partial.iter_mut().take(code.n() - code.k()) {
                *slot = None;
            }
            let decode_mb_s = throughput_mb_s(config, data_len, || {
                let decoded = code.decode(&partial).unwrap();
                std::hint::black_box(&decoded);
            });

            println!(
                "{:<13}  ({:>2},{:>2})  {:>7}  {:>11.0}  {:>11.0}",
                name,
                code.n(),
                code.k(),
                human_size(data_len),
                encode_mb_s,
                decode_mb_s
            );
            out.push(Json::obj(vec![
                ("code", Json::Str((*name).into())),
                ("n", Json::Int(code.n() as i64)),
                ("k", Json::Int(code.k() as i64)),
                ("data_bytes", Json::Int(data_len as i64)),
                ("encode_mb_s", Json::Num(encode_mb_s)),
                ("decode_mb_s", Json::Num(decode_mb_s)),
                (
                    "encode_xors_per_data_byte",
                    Json::Num(code.cost(data_len).encode_xors_per_data_byte()),
                ),
            ]));
        }
    }
    out
}

/// Enforce the in-tree speedup requirement (release builds only: debug
/// timings say nothing about the kernels).
fn enforce_speedups(kernels: &[KernelResult], no_assert: bool) {
    let enforced = kernels
        .iter()
        .filter(|r| r.block_bytes == ASSERT_BLOCK)
        .collect::<Vec<_>>();
    assert!(
        !enforced.is_empty(),
        "no kernel measurements at the {ASSERT_BLOCK}-byte assertion block size"
    );
    if cfg!(debug_assertions) {
        println!("debug build: skipping the {REQUIRED_KERNEL_SPEEDUP}x kernel speedup check");
        return;
    }
    if no_assert {
        println!("--no-assert: skipping the {REQUIRED_KERNEL_SPEEDUP}x kernel speedup check");
        return;
    }
    for r in enforced {
        // The GF bulk multiply only clears the SIMD-level bar when a SIMD
        // kernel is dispatched; the portable lane fallback (non-x86, or x86
        // without AVX2) trades lookups per byte much like the scalar
        // baseline and is covered by correctness tests instead.
        if r.name == "mul_acc_slice" && rain_codes::gf256::active_bulk_kernel() == "portable" {
            println!(
                "note: {} uses the portable fallback kernel on this CPU; \
                 skipping its {REQUIRED_KERNEL_SPEEDUP}x check ({:.2}x measured)",
                r.name,
                r.speedup()
            );
            continue;
        }
        assert!(
            r.speedup() >= REQUIRED_KERNEL_SPEEDUP,
            "{} is only {:.2}x its scalar baseline at {} (required: {}x)",
            r.name,
            r.speedup(),
            human_size(r.block_bytes),
            REQUIRED_KERNEL_SPEEDUP
        );
        println!(
            "ok: {} is {:.2}x its scalar baseline at {}",
            r.name,
            r.speedup(),
            human_size(r.block_bytes)
        );
    }
}

fn human_size(bytes: usize) -> String {
    if bytes.is_multiple_of(1024 * 1024) {
        format!("{}MiB", bytes / (1024 * 1024))
    } else if bytes.is_multiple_of(1024) {
        format!("{}KiB", bytes / 1024)
    } else {
        format!("{bytes}B")
    }
}
